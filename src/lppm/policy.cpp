#include "lppm/policy.hpp"

#include "geo/geodesy.hpp"
#include "util/expect.hpp"

namespace locpriv::lppm {

std::string_view release_decision_name(ReleaseDecision decision) {
  switch (decision) {
    case ReleaseDecision::kReal: return "real";
    case ReleaseDecision::kCoarse: return "coarse";
    case ReleaseDecision::kFixed: return "fixed";
    case ReleaseDecision::kBlock: return "block";
  }
  return "?";
}

GuardianPolicy::GuardianPolicy(const geo::LatLon& anchor, double coarse_cell_m)
    : anchor_(anchor), coarse_cell_m_(coarse_cell_m), projection_(anchor) {
  LOCPRIV_EXPECT(coarse_cell_m > 0.0);
}

void GuardianPolicy::set_default_rules(const GuardianRules& rules) {
  default_rules_ = rules;
}

void GuardianPolicy::set_app_rules(const std::string& package,
                                   const GuardianRules& rules) {
  LOCPRIV_EXPECT(!package.empty());
  app_rules_[package] = rules;
}

void GuardianPolicy::protect_place(const geo::LatLon& place, double radius_m) {
  LOCPRIV_EXPECT(radius_m > 0.0);
  protected_places_.emplace_back(place, radius_m);
}

ReleaseDecision GuardianPolicy::decide(const std::string& package, bool backgrounded,
                                       const geo::LatLon& true_position) const {
  for (const auto& [place, radius] : protected_places_)
    if (geo::equirectangular_m(place, true_position) <= radius)
      return ReleaseDecision::kBlock;
  const auto it = app_rules_.find(package);
  const GuardianRules& rules = it == app_rules_.end() ? default_rules_ : it->second;
  return backgrounded ? rules.background : rules.foreground;
}

bool GuardianPolicy::apply(const std::string& package, bool backgrounded,
                           geo::LatLon& position) const {
  switch (decide(package, backgrounded, position)) {
    case ReleaseDecision::kReal:
      return true;
    case ReleaseDecision::kCoarse:
      position = geo::snap_to_grid(position, coarse_cell_m_, projection_);
      return true;
    case ReleaseDecision::kFixed:
      position = anchor_;
      return true;
    case ReleaseDecision::kBlock:
      return false;
  }
  return true;
}

std::function<bool(const std::string&, geo::LatLon&)> GuardianPolicy::make_position_hook(
    std::function<bool(const std::string&)> backgrounded) const {
  LOCPRIV_EXPECT(static_cast<bool>(backgrounded));
  return [this, backgrounded = std::move(backgrounded)](const std::string& package,
                                                        geo::LatLon& position) {
    return apply(package, backgrounded(package), position);
  };
}

}  // namespace locpriv::lppm
