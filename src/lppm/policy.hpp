// LP-Guardian-style on-device release policy (after Fawaz & Shin, CCS'14,
// and Fawaz, Feng & Shin, USENIX Security'15 — the paper's [11, 12]).
//
// Unlike the stream defenses in defense.hpp (which post-process what an app
// already collected), the policy sits *inside* the platform: every fix
// about to be delivered is classified by (app, lifecycle state, place) and
// released as-is, coarsened, replaced by a fixed anchor, or blocked. Wire
// it into the simulated framework via LocationManager::set_release_hook
// (see GuardianPolicy::make_hook).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "geo/projection.hpp"

namespace locpriv::lppm {

/// What the policy does with one fix.
enum class ReleaseDecision {
  kReal,    ///< Deliver the true fix.
  kCoarse,  ///< Snap to the coarse grid before delivering.
  kFixed,   ///< Deliver the fixed anchor position (city-level placeholder).
  kBlock,   ///< Suppress the delivery.
};

std::string_view release_decision_name(ReleaseDecision decision);

/// Per-app rules: one decision while the app is foregrounded, one while it
/// is backgrounded. LP-Guardian's default posture: truthful in foreground
/// (the user asked), coarse in background.
struct GuardianRules {
  ReleaseDecision foreground = ReleaseDecision::kReal;
  ReleaseDecision background = ReleaseDecision::kCoarse;
};

/// The policy engine.
class GuardianPolicy {
 public:
  /// `anchor` centres the coarse grid and serves as the kFixed position;
  /// `coarse_cell_m` is the coarsening granularity. coarse_cell_m > 0.
  GuardianPolicy(const geo::LatLon& anchor, double coarse_cell_m = 1000.0);

  /// Replaces the default rules applied to apps without an explicit entry.
  void set_default_rules(const GuardianRules& rules);

  /// Per-app override ("my navigation app may see everything").
  void set_app_rules(const std::string& package, const GuardianRules& rules);

  /// Registers a sensitive place: any fix within `radius_m` of it is
  /// blocked for every app regardless of other rules. radius_m > 0.
  void protect_place(const geo::LatLon& place, double radius_m);

  /// The decision for one fix.
  ReleaseDecision decide(const std::string& package, bool backgrounded,
                         const geo::LatLon& true_position) const;

  /// Applies the decision in place; returns false when blocked.
  bool apply(const std::string& package, bool backgrounded,
             geo::LatLon& position) const;

  /// Adapts the policy to a LocationManager release hook. `backgrounded`
  /// must report the app's current lifecycle state (the device glue; see
  /// DeviceSimulator::app). The policy must outlive the hook.
  std::function<bool(const std::string&, geo::LatLon&)> make_position_hook(
      std::function<bool(const std::string&)> backgrounded) const;

 private:
  geo::LatLon anchor_;
  double coarse_cell_m_;
  geo::LocalProjection projection_;
  GuardianRules default_rules_;
  std::map<std::string, GuardianRules> app_rules_;
  std::vector<std::pair<geo::LatLon, double>> protected_places_;
};

}  // namespace locpriv::lppm
