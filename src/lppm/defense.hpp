// Location Privacy Protection Mechanisms (LPPMs).
//
// The paper's related work surveys the defense space — location truncation
// (Micinski et al.), coarse release for background apps (LP-Guardian),
// spatial cloaking (Gruteser & Grunwald), perturbation, and release
// throttling. This module implements them behind one interface so the
// evaluation harness (core/defense_eval) can score any of them on the
// same privacy-vs-utility axes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "geo/projection.hpp"
#include "stats/rng.hpp"
#include "trace/trajectory.hpp"

namespace locpriv::lppm {

/// A defense transforms the fix stream an app would otherwise receive into
/// the stream actually released to it. Implementations must be
/// deterministic given the Rng. Stateless across calls (each call is one
/// app's full observation window).
class Defense {
 public:
  virtual ~Defense() = default;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;

  /// Produces the released stream. May drop, delay-quantise, or perturb
  /// fixes, but never reorders time.
  virtual std::vector<trace::TracePoint> release(
      const std::vector<trace::TracePoint>& requested, stats::Rng& rng) const = 0;
};

/// No-op baseline: releases exactly what was requested.
class IdentityDefense final : public Defense {
 public:
  std::string name() const override { return "none"; }
  std::vector<trace::TracePoint> release(const std::vector<trace::TracePoint>& requested,
                                         stats::Rng& rng) const override;
};

/// Truncation / grid coarsening: every fix snaps to the centre of a square
/// cell (Micinski et al.'s location truncation; LP-Guardian's coarse
/// release). Precondition: cell_m > 0.
class GridSnapDefense final : public Defense {
 public:
  GridSnapDefense(double cell_m, const geo::LatLon& anchor);
  std::string name() const override;
  std::vector<trace::TracePoint> release(const std::vector<trace::TracePoint>& requested,
                                         stats::Rng& rng) const override;

 private:
  double cell_m_;
  geo::LocalProjection projection_;
};

/// Gaussian perturbation: adds zero-mean noise of `sigma_m` per fix.
/// Precondition: sigma_m > 0.
class GaussianPerturbationDefense final : public Defense {
 public:
  explicit GaussianPerturbationDefense(double sigma_m);
  std::string name() const override;
  std::vector<trace::TracePoint> release(const std::vector<trace::TracePoint>& requested,
                                         stats::Rng& rng) const override;

 private:
  double sigma_m_;
};

/// Adaptive spatial cloaking (Gruteser & Grunwald): each fix is enlarged to
/// the smallest cell from a doubling ladder (base_cell_m, 2x, 4x, ...) that
/// contains at least k of the supplied anchor positions (e.g. the homes of
/// the user population) — a k-anonymity-style region — and the cell centre
/// is released. Preconditions: base_cell_m > 0, k >= 1, anchors non-empty.
class SpatialCloakingDefense final : public Defense {
 public:
  SpatialCloakingDefense(double base_cell_m, std::size_t k,
                         std::vector<geo::LatLon> anchors, const geo::LatLon& origin);
  std::string name() const override;
  std::vector<trace::TracePoint> release(const std::vector<trace::TracePoint>& requested,
                                         stats::Rng& rng) const override;

  /// The cell size chosen for a position (exposed for tests).
  double cell_for(const geo::LatLon& position) const;

 private:
  double base_cell_m_;
  std::size_t k_;
  std::vector<geo::EastNorth> anchors_;
  geo::LocalProjection projection_;
  static constexpr int kMaxDoublings = 8;
};

/// Release throttling: at most one fix per `min_interval_s`, regardless of
/// how often the app asks (LP-Guardian-style rate limiting).
/// Precondition: min_interval_s > 0.
class ThrottleDefense final : public Defense {
 public:
  explicit ThrottleDefense(std::int64_t min_interval_s);
  std::string name() const override;
  std::vector<trace::TracePoint> release(const std::vector<trace::TracePoint>& requested,
                                         stats::Rng& rng) const override;

 private:
  std::int64_t min_interval_s_;
};

/// Sensitive-place suppression: fixes within `radius_m` of any protected
/// place are dropped ("users can block the access to sensitive locations",
/// paper §IV.B). Preconditions: radius_m > 0.
class PlaceSuppressionDefense final : public Defense {
 public:
  PlaceSuppressionDefense(std::vector<geo::LatLon> protected_places, double radius_m);
  std::string name() const override;
  std::vector<trace::TracePoint> release(const std::vector<trace::TracePoint>& requested,
                                         stats::Rng& rng) const override;

 private:
  std::vector<geo::LatLon> places_;
  double radius_m_;
};

/// The standard comparison suite used by bench_defenses: identity, snapping
/// at 100/250/1000 m, perturbation at 100 m, cloaking k=5 over `homes`,
/// throttling at 600 s, and suppression of every home location (modelling a
/// population that blocks access at home, the paper's "users can block the
/// access to sensitive locations").
std::vector<std::unique_ptr<Defense>> standard_suite(const geo::LatLon& anchor,
                                                     std::vector<geo::LatLon> homes);

}  // namespace locpriv::lppm
