#include "lppm/defense.hpp"

#include <cmath>

#include "geo/geodesy.hpp"
#include "util/expect.hpp"
#include "util/strings.hpp"

namespace locpriv::lppm {

std::vector<trace::TracePoint> IdentityDefense::release(
    const std::vector<trace::TracePoint>& requested, stats::Rng& rng) const {
  (void)rng;
  return requested;
}

GridSnapDefense::GridSnapDefense(double cell_m, const geo::LatLon& anchor)
    : cell_m_(cell_m), projection_(anchor) {
  LOCPRIV_EXPECT(cell_m > 0.0);
}

std::string GridSnapDefense::name() const {
  return "snap-" + util::format_fixed(cell_m_, 0) + "m";
}

std::vector<trace::TracePoint> GridSnapDefense::release(
    const std::vector<trace::TracePoint>& requested, stats::Rng& rng) const {
  (void)rng;
  std::vector<trace::TracePoint> released = requested;
  for (auto& point : released)
    point.position = geo::snap_to_grid(point.position, cell_m_, projection_);
  return released;
}

GaussianPerturbationDefense::GaussianPerturbationDefense(double sigma_m)
    : sigma_m_(sigma_m) {
  LOCPRIV_EXPECT(sigma_m > 0.0);
}

std::string GaussianPerturbationDefense::name() const {
  return "perturb-" + util::format_fixed(sigma_m_, 0) + "m";
}

std::vector<trace::TracePoint> GaussianPerturbationDefense::release(
    const std::vector<trace::TracePoint>& requested, stats::Rng& rng) const {
  std::vector<trace::TracePoint> released = requested;
  for (auto& point : released) {
    const double east = rng.normal(0.0, sigma_m_);
    const double north = rng.normal(0.0, sigma_m_);
    const double distance = std::sqrt(east * east + north * north);
    if (distance > 0.0)
      point.position = geo::destination(
          point.position, geo::rad_to_deg(std::atan2(east, north)), distance);
  }
  return released;
}

SpatialCloakingDefense::SpatialCloakingDefense(double base_cell_m, std::size_t k,
                                               std::vector<geo::LatLon> anchors,
                                               const geo::LatLon& origin)
    : base_cell_m_(base_cell_m), k_(k), projection_(origin) {
  LOCPRIV_EXPECT(base_cell_m > 0.0);
  LOCPRIV_EXPECT(k >= 1);
  LOCPRIV_EXPECT(!anchors.empty());
  anchors_.reserve(anchors.size());
  for (const auto& anchor : anchors) anchors_.push_back(projection_.to_plane(anchor));
}

std::string SpatialCloakingDefense::name() const {
  return "cloak-k" + std::to_string(k_);
}

double SpatialCloakingDefense::cell_for(const geo::LatLon& position) const {
  const geo::EastNorth p = projection_.to_plane(position);
  double cell = base_cell_m_;
  for (int doubling = 0; doubling < kMaxDoublings; ++doubling, cell *= 2.0) {
    // Count anchors inside the cell that would contain `position`.
    const double cell_east = std::floor(p.east_m / cell) * cell;
    const double cell_north = std::floor(p.north_m / cell) * cell;
    std::size_t inside = 0;
    for (const auto& anchor : anchors_) {
      if (anchor.east_m >= cell_east && anchor.east_m < cell_east + cell &&
          anchor.north_m >= cell_north && anchor.north_m < cell_north + cell)
        ++inside;
      if (inside >= k_) return cell;
    }
  }
  return cell;  // Ladder exhausted: the largest cell.
}

std::vector<trace::TracePoint> SpatialCloakingDefense::release(
    const std::vector<trace::TracePoint>& requested, stats::Rng& rng) const {
  (void)rng;
  std::vector<trace::TracePoint> released = requested;
  for (auto& point : released) {
    const double cell = cell_for(point.position);
    point.position = geo::snap_to_grid(point.position, cell, projection_);
  }
  return released;
}

ThrottleDefense::ThrottleDefense(std::int64_t min_interval_s)
    : min_interval_s_(min_interval_s) {
  LOCPRIV_EXPECT(min_interval_s > 0);
}

std::string ThrottleDefense::name() const {
  return "throttle-" + std::to_string(min_interval_s_) + "s";
}

std::vector<trace::TracePoint> ThrottleDefense::release(
    const std::vector<trace::TracePoint>& requested, stats::Rng& rng) const {
  (void)rng;
  std::vector<trace::TracePoint> released;
  std::int64_t next_due = requested.empty() ? 0 : requested.front().timestamp_s;
  for (const auto& point : requested) {
    if (point.timestamp_s < next_due) continue;
    released.push_back(point);
    next_due = point.timestamp_s + min_interval_s_;
  }
  return released;
}

PlaceSuppressionDefense::PlaceSuppressionDefense(std::vector<geo::LatLon> protected_places,
                                                 double radius_m)
    : places_(std::move(protected_places)), radius_m_(radius_m) {
  LOCPRIV_EXPECT(radius_m > 0.0);
}

std::string PlaceSuppressionDefense::name() const {
  return "suppress-" + std::to_string(places_.size()) + "places";
}

std::vector<trace::TracePoint> PlaceSuppressionDefense::release(
    const std::vector<trace::TracePoint>& requested, stats::Rng& rng) const {
  (void)rng;
  std::vector<trace::TracePoint> released;
  released.reserve(requested.size());
  for (const auto& point : requested) {
    bool suppressed = false;
    for (const auto& place : places_) {
      if (geo::equirectangular_m(point.position, place) <= radius_m_) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) released.push_back(point);
  }
  return released;
}

std::vector<std::unique_ptr<Defense>> standard_suite(const geo::LatLon& anchor,
                                                     std::vector<geo::LatLon> homes) {
  LOCPRIV_EXPECT(!homes.empty());
  std::vector<std::unique_ptr<Defense>> suite;
  suite.push_back(std::make_unique<IdentityDefense>());
  suite.push_back(std::make_unique<GridSnapDefense>(100.0, anchor));
  suite.push_back(std::make_unique<GridSnapDefense>(250.0, anchor));
  suite.push_back(std::make_unique<GridSnapDefense>(1000.0, anchor));
  suite.push_back(std::make_unique<GaussianPerturbationDefense>(100.0));
  suite.push_back(std::make_unique<SpatialCloakingDefense>(250.0, 5, homes, anchor));
  suite.push_back(std::make_unique<ThrottleDefense>(600));
  suite.push_back(std::make_unique<PlaceSuppressionDefense>(homes, 150.0));
  return suite;
}

}  // namespace locpriv::lppm
