#include "android/location_manager.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace locpriv::android {

LocationManager::LocationManager(stats::Rng noise) : noise_(noise) {}

void LocationManager::check_permission(LocationProvider provider,
                                       Granularity granularity,
                                       const PermissionSet& held) const {
  switch (provider) {
    case LocationProvider::kGps:
      if (!held.fine_location())
        throw SecurityException("gps provider requires ACCESS_FINE_LOCATION");
      return;
    case LocationProvider::kNetwork:
    case LocationProvider::kPassive:
      if (!held.any_location())
        throw SecurityException(std::string(provider_name(provider)) +
                                " provider requires a location permission");
      return;
    case LocationProvider::kFused:
      if (granularity == Granularity::kFine && !held.fine_location())
        throw SecurityException("fused fine requests require ACCESS_FINE_LOCATION");
      if (!held.any_location())
        throw SecurityException("fused provider requires a location permission");
      return;
  }
}

void LocationManager::request_updates(const std::string& package,
                                      LocationProvider provider,
                                      std::int64_t interval_s, Granularity granularity,
                                      const PermissionSet& held, std::int64_t now_s) {
  LOCPRIV_EXPECT(interval_s >= 1);
  LOCPRIV_EXPECT(!package.empty());
  check_permission(provider, granularity, held);
  remove_updates(package, provider);
  LocationRequest request;
  request.package = package;
  request.provider = provider;
  request.interval_s = interval_s;
  request.granularity = granularity;
  request.registered_at_s = now_s;
  requests_.push_back(std::move(request));
}

void LocationManager::remove_updates(const std::string& package,
                                     LocationProvider provider) {
  std::erase_if(requests_, [&](const LocationRequest& r) {
    return r.package == package && r.provider == provider;
  });
}

void LocationManager::remove_all(const std::string& package) {
  std::erase_if(requests_,
                [&](const LocationRequest& r) { return r.package == package; });
}

std::vector<LocationRequest> LocationManager::requests_of(
    const std::string& package) const {
  std::vector<LocationRequest> out;
  for (const auto& request : requests_)
    if (request.package == package) out.push_back(request);
  return out;
}

const Location& LocationManager::last_known() const {
  LOCPRIV_EXPECT(has_last_known_);
  return last_known_;
}

Location LocationManager::make_fix(LocationProvider provider, Granularity granularity,
                                   const geo::LatLon& position, std::int64_t now_s) {
  Location fix;
  fix.provider = provider;
  fix.time_s = now_s;
  const double accuracy = provider_accuracy_m(provider, granularity);
  // Jitter the reported accuracy ±25 % so the log looks like real fixes.
  fix.accuracy_m = accuracy * noise_.uniform(0.75, 1.25);
  fix.position = position;
  return fix;
}

std::size_t LocationManager::tick(std::int64_t now_s, const geo::LatLon& position) {
  std::size_t delivered = 0;
  bool active_fix_this_tick = false;
  Location active_fix;

  // Active providers first: gps, network, fused deliveries come due on their
  // own schedule.
  for (auto& request : requests_) {
    if (request.provider == LocationProvider::kPassive) continue;
    const bool due = request.last_delivery_s < 0
                         ? now_s >= request.registered_at_s
                         : now_s - request.last_delivery_s >= request.interval_s;
    if (!due) continue;
    Location fix = make_fix(request.provider, request.granularity, position, now_s);
    if (fault_hook_) {
      const FaultVerdict verdict = fault_hook_(request, fix);
      if (verdict == FaultVerdict::kDropRetry) continue;
      if (verdict == FaultVerdict::kDropConsume) {
        request.last_delivery_s = now_s;
        continue;
      }
    }
    // The request is consumed (its clock advances) whether or not the
    // policy suppresses the release — an app cannot bypass the policy by
    // re-requesting faster.
    request.last_delivery_s = now_s;
    if (release_hook_ && !release_hook_(request.package, fix)) continue;
    delivery_log_.push_back({request.package, fix});
    last_known_ = fix;
    has_last_known_ = true;
    active_fix = fix;
    active_fix_this_tick = true;
    ++delivered;
  }

  // Passive provider piggybacks: when any active fix was produced this
  // tick, passive listeners whose own minimum interval has elapsed get it.
  if (active_fix_this_tick) {
    for (auto& request : requests_) {
      if (request.provider != LocationProvider::kPassive) continue;
      const bool due = request.last_delivery_s < 0 ||
                       now_s - request.last_delivery_s >= request.interval_s;
      if (!due) continue;
      Location fix = active_fix;
      fix.provider = LocationProvider::kPassive;
      // Passive listeners piggyback on a fix that already survived the fault
      // layer, but the per-listener delivery leg can still fail.
      if (fault_hook_) {
        const FaultVerdict verdict = fault_hook_(request, fix);
        if (verdict == FaultVerdict::kDropRetry) continue;
        if (verdict == FaultVerdict::kDropConsume) {
          request.last_delivery_s = now_s;
          continue;
        }
      }
      request.last_delivery_s = now_s;
      if (release_hook_ && !release_hook_(request.package, fix)) continue;
      delivery_log_.push_back({request.package, fix});
      ++delivered;
    }
  }
  return delivered;
}

}  // namespace locpriv::android
