#include "android/dumpsys.hpp"

#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace locpriv::android {

std::string dumpsys_location_report(const LocationManager& manager,
                                    std::int64_t now_s) {
  std::ostringstream os;
  os << "Location Manager state (t=" << now_s << "s):\n";
  const auto& requests = manager.active_requests();
  if (!requests.empty()) {
    os << "  Active Requests:\n";
    for (const auto& request : requests) {
      os << "    Request[" << provider_name(request.provider)
         << "] pkg=" << request.package << " interval=" << request.interval_s
         << "s granularity=" << granularity_name(request.granularity) << '\n';
    }
  }
  if (manager.has_last_known()) {
    const Location& fix = manager.last_known();
    os << "  Last Known Location: provider=" << provider_name(fix.provider)
       << " acc=" << util::format_fixed(fix.accuracy_m, 1) << "m\n";
  }
  return os.str();
}

namespace {

[[noreturn]] void malformed(std::string_view line, const std::string& detail) {
  throw std::runtime_error("malformed dumpsys request line (" + detail +
                           "): " + std::string(line));
}

// Extracts the value following "key=" up to the next space.
std::string_view field_value(std::string_view line, std::string_view key) {
  const std::size_t pos = line.find(key);
  if (pos == std::string_view::npos) return {};
  const std::size_t begin = pos + key.size();
  const std::size_t end = line.find(' ', begin);
  return line.substr(begin, end == std::string_view::npos ? line.size() - begin
                                                          : end - begin);
}

}  // namespace

std::vector<DumpsysRequest> parse_dumpsys_location(std::string_view report) {
  std::vector<DumpsysRequest> requests;
  std::size_t pos = 0;
  while (pos < report.size()) {
    std::size_t end = report.find('\n', pos);
    if (end == std::string_view::npos) end = report.size();
    const std::string_view line = util::trim(report.substr(pos, end - pos));
    pos = end + 1;
    if (!util::starts_with(line, "Request[")) continue;

    DumpsysRequest request;
    const std::size_t bracket = line.find(']');
    if (bracket == std::string_view::npos) malformed(line, "missing ']'");
    const std::string_view provider_text = line.substr(8, bracket - 8);
    if (!parse_provider(provider_text, request.provider))
      malformed(line, "unknown provider");

    const std::string_view pkg = field_value(line, "pkg=");
    if (pkg.empty()) malformed(line, "missing pkg");
    request.package = std::string(pkg);

    std::string_view interval_text = field_value(line, "interval=");
    if (!util::ends_with(interval_text, "s")) malformed(line, "missing interval");
    interval_text.remove_suffix(1);
    long long interval = 0;
    if (!util::parse_int64(interval_text, interval) || interval < 0)
      malformed(line, "bad interval");
    request.interval_s = interval;

    const std::string_view granularity_text = field_value(line, "granularity=");
    if (granularity_text == "fine") request.granularity = Granularity::kFine;
    else if (granularity_text == "coarse") request.granularity = Granularity::kCoarse;
    else malformed(line, "bad granularity");

    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace locpriv::android
