// dumpsys-style diagnostics. The paper inspects `dumpsys location` to learn
// "which app is accessing the location, what location provider is registered
// and how frequently the app requests location"; our report carries exactly
// that, and the parser is what the market's dynamic measurement stage
// consumes — so the pipeline exercises a genuine emit/parse round trip
// rather than peeking at simulator internals.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "android/location_manager.hpp"

namespace locpriv::android {

/// Renders the location-service section of a dumpsys report.
///
/// Format (stable, covered by tests):
///   Location Manager state (t=<now>s):
///     Active Requests:
///       Request[<provider>] pkg=<package> interval=<s>s granularity=<g>
///     Last Known Location: provider=<p> acc=<m>m
/// The "Active Requests:" section is omitted when empty.
std::string dumpsys_location_report(const LocationManager& manager, std::int64_t now_s);

/// One request line parsed back out of a report.
struct DumpsysRequest {
  std::string package;
  LocationProvider provider = LocationProvider::kGps;
  std::int64_t interval_s = 0;
  Granularity granularity = Granularity::kFine;
};

/// Parses the request lines of a dumpsys report. Throws std::runtime_error
/// on malformed request lines; unknown lines are ignored (forward
/// compatibility, like real dumpsys consumers).
std::vector<DumpsysRequest> parse_dumpsys_location(std::string_view report);

}  // namespace locpriv::android
