// Android permission model, restricted to what the paper's measurement
// needs: the two location permissions and a manifest that declares them.
// Mirrors Android 4.4 install-time semantics (permissions granted at install,
// no runtime prompts).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace locpriv::android {

/// Location-related permissions.
enum class Permission {
  kAccessFineLocation,
  kAccessCoarseLocation,
};

/// Full Android permission string ("android.permission.ACCESS_FINE_LOCATION").
std::string_view permission_name(Permission permission);

/// Parses a permission string; returns false for unknown permissions.
bool parse_permission(std::string_view name, Permission& out);

/// The set of permissions an app holds.
class PermissionSet {
 public:
  PermissionSet() = default;
  explicit PermissionSet(std::vector<Permission> permissions);

  void grant(Permission permission);
  bool holds(Permission permission) const;

  /// True if the set contains either location permission.
  bool any_location() const;

  /// True if the app may receive fine-grained locations.
  bool fine_location() const { return holds(Permission::kAccessFineLocation); }

  const std::vector<Permission>& permissions() const { return permissions_; }

 private:
  std::vector<Permission> permissions_;
};

/// The slice of an AndroidManifest.xml the measurement pipeline reads.
struct AndroidManifest {
  std::string package_name;
  std::vector<Permission> uses_permissions;
  bool declares_service = false;    ///< Has a <service> (can persist in background).
  bool declares_receiver = false;   ///< Has a boot/location <receiver>.

  /// True if any location permission is declared — the paper's first filter
  /// (1,137 of 2,800 apps pass it).
  bool declares_location() const;

  /// Declared granularity summary used by Table I's row labels:
  /// "Fine", "Coarse", or "Fine & Coarse".
  std::string declared_granularity() const;
};

/// Thrown by the location framework when an app lacks the permission its
/// request requires (models java.lang.SecurityException).
class SecurityException : public std::runtime_error {
 public:
  explicit SecurityException(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace locpriv::android
