#include "android/replay.hpp"

#include "util/expect.hpp"

namespace locpriv::android {

std::size_t replay_trace(DeviceSimulator& device,
                         const std::vector<trace::TracePoint>& points,
                         bool sync_clock) {
  if (points.empty()) return 0;
  if (sync_clock) {
    // Sync to one second before the first fix so the fix itself is
    // delivered by a tick (ticks fire at now+1).
    device.jump_to(points.front().timestamp_s - 1);
  }
  LOCPRIV_EXPECT(device.now_s() < points.front().timestamp_s);

  std::size_t ticks = 0;
  for (const auto& point : points) {
    LOCPRIV_EXPECT(point.timestamp_s >= device.now_s());
    const std::int64_t dt = point.timestamp_s - device.now_s();
    // Hold the previous position until just before this fix's time (the
    // user is still wherever they were during a recording gap), then move
    // and tick once so deliveries at the fix's timestamp see the new
    // position.
    if (dt > 1) device.advance(dt - 1);
    device.set_position(point.position);
    if (dt > 0) device.advance(1);
    ticks += static_cast<std::size_t>(dt);
  }
  return ticks;
}

std::vector<trace::TracePoint> collected_fixes(const LocationManager& manager,
                                               const std::string& package) {
  std::vector<trace::TracePoint> fixes;
  for (const auto& delivery : manager.delivery_log()) {
    if (delivery.package != package) continue;
    fixes.push_back({delivery.location.position, delivery.location.time_s});
  }
  return fixes;
}

}  // namespace locpriv::android
