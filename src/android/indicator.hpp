// The status-bar location indicator and what the user can perceive from it.
//
// Section III's motivation: "users could be aware of the action by
// observing the notification on the system bar... it is very difficult to
// recognize the action when it happens in background. Even worse, users
// may mistake that the location access from a background app is from the
// foreground app." This module reconstructs the indicator's on-spans from
// the framework delivery log and attributes each span to the apps behind
// it, quantifying exactly that misattribution.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "android/location_manager.hpp"

namespace locpriv::android {

/// One contiguous span during which the status-bar indicator was lit.
struct IndicatorSpan {
  std::int64_t begin_s = 0;
  std::int64_t end_s = 0;  ///< Inclusive of the linger after the last fix.
  std::vector<std::string> packages;  ///< Apps that received fixes in the span.

  std::int64_t duration_s() const { return end_s - begin_s; }
};

/// Per-app attribution summary.
struct IndicatorAttribution {
  /// Total seconds the indicator was lit.
  std::int64_t lit_s = 0;
  /// Seconds of indicator time attributable solely to each package (the
  /// package was the only one receiving fixes in the span).
  std::map<std::string, std::int64_t> sole_s;
  /// Seconds during which 2+ apps shared the indicator — the user cannot
  /// tell who is listening.
  std::int64_t ambiguous_s = 0;
};

/// Reconstructs the indicator spans from a delivery log. The indicator
/// lingers `linger_s` seconds after each delivery (Android keeps the icon
/// visible briefly); deliveries closer than the linger merge into one
/// span. Precondition: linger_s >= 1.
std::vector<IndicatorSpan> indicator_spans(const std::vector<Delivery>& log,
                                           std::int64_t linger_s = 10);

/// Aggregates spans into the attribution summary.
IndicatorAttribution attribute_indicator(const std::vector<IndicatorSpan>& spans);

}  // namespace locpriv::android
