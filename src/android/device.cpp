#include "android/device.hpp"

#include <algorithm>

#include "util/expect.hpp"
#include "util/logging.hpp"

namespace locpriv::android {

std::string_view app_state_name(AppState state) {
  switch (state) {
    case AppState::kNotRunning: return "not-running";
    case AppState::kForeground: return "foreground";
    case AppState::kBackground: return "background";
  }
  return "?";
}

DeviceSimulator::DeviceSimulator(std::uint64_t seed, const geo::LatLon& position)
    : manager_(stats::Rng(seed)), position_(position) {}

void DeviceSimulator::install(AndroidManifest manifest, AppBehavior behavior) {
  LOCPRIV_EXPECT(!manifest.package_name.empty());
  LOCPRIV_EXPECT(!is_installed(manifest.package_name));
  InstalledApp app;
  app.granted = PermissionSet(manifest.uses_permissions);
  app.manifest = std::move(manifest);
  app.behavior = std::move(behavior);
  apps_.emplace(app.manifest.package_name, std::move(app));
}

bool DeviceSimulator::is_installed(const std::string& package) const {
  return apps_.contains(package);
}

void DeviceSimulator::uninstall(const std::string& package) {
  if (!is_installed(package)) return;
  close(package);
  apps_.erase(package);
}

InstalledApp& DeviceSimulator::app_mutable(const std::string& package) {
  const auto it = apps_.find(package);
  LOCPRIV_EXPECT(it != apps_.end());
  return it->second;
}

const InstalledApp& DeviceSimulator::app(const std::string& package) const {
  const auto it = apps_.find(package);
  LOCPRIV_EXPECT(it != apps_.end());
  return it->second;
}

void DeviceSimulator::enable_background_location_limits(std::int64_t min_interval_s) {
  LOCPRIV_EXPECT(min_interval_s >= 1);
  background_min_interval_s_ = min_interval_s;
  // Apply immediately to already-backgrounded apps.
  for (auto& [package, app] : apps_) {
    (void)package;
    if (app.location_active && app.state == AppState::kBackground)
      register_listeners(app, /*backgrounded=*/true);
  }
}

void DeviceSimulator::register_listeners(InstalledApp& app, bool backgrounded) {
  std::int64_t interval = app.behavior.request_interval_s;
  if (backgrounded && background_min_interval_s_ > 0)
    interval = std::max(interval, background_min_interval_s_);
  for (const LocationProvider provider : app.behavior.providers)
    manager_.request_updates(app.manifest.package_name, provider, interval,
                             app.behavior.requested_granularity, app.granted, now_s_);
}

void DeviceSimulator::start_location(InstalledApp& app) {
  if (app.location_active || !app.behavior.uses_location) return;
  register_listeners(app, app.state == AppState::kBackground);
  app.location_active = true;
}

void DeviceSimulator::stop_location(InstalledApp& app) {
  if (!app.location_active) return;
  manager_.remove_all(app.manifest.package_name);
  app.location_active = false;
}

void DeviceSimulator::launch(const std::string& package) {
  InstalledApp& app = app_mutable(package);
  if (!foreground_.empty() && foreground_ != package) {
    // Only one activity on top: the previous app is cached in background.
    move_to_background(foreground_);
  }
  app.state = AppState::kForeground;
  foreground_ = package;
  if (app.behavior.auto_start_on_launch) start_location(app);
  // Foregrounding restores the full requested rate under the O policy.
  if (app.location_active) register_listeners(app, /*backgrounded=*/false);
}

void DeviceSimulator::trigger_location_use(const std::string& package) {
  InstalledApp& app = app_mutable(package);
  LOCPRIV_EXPECT(app.state == AppState::kForeground);
  start_location(app);
}

void DeviceSimulator::move_to_background(const std::string& package) {
  InstalledApp& app = app_mutable(package);
  if (app.state != AppState::kForeground) return;
  app.state = AppState::kBackground;
  if (foreground_ == package) foreground_.clear();
  if (!app.behavior.continues_in_background) {
    stop_location(app);
  } else if (app.location_active) {
    // Background apps keep their listeners, throttled if the O policy is on.
    register_listeners(app, /*backgrounded=*/true);
  }
}

void DeviceSimulator::close(const std::string& package) {
  InstalledApp& app = app_mutable(package);
  stop_location(app);
  app.state = AppState::kNotRunning;
  if (foreground_ == package) foreground_.clear();
}

void DeviceSimulator::advance(std::int64_t seconds) {
  LOCPRIV_EXPECT(seconds >= 0);
  for (std::int64_t i = 0; i < seconds; ++i) {
    ++now_s_;
    manager_.tick(now_s_, position_);
  }
}

void DeviceSimulator::jump_to(std::int64_t now_s) {
  LOCPRIV_EXPECT(manager_.active_requests().empty());
  now_s_ = now_s;
}

}  // namespace locpriv::android
