#include "android/location.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace locpriv::android {

std::string_view provider_name(LocationProvider provider) {
  switch (provider) {
    case LocationProvider::kGps: return "gps";
    case LocationProvider::kNetwork: return "network";
    case LocationProvider::kPassive: return "passive";
    case LocationProvider::kFused: return "fused";
  }
  return "?";
}

bool parse_provider(std::string_view name, LocationProvider& out) {
  for (const LocationProvider p :
       {LocationProvider::kGps, LocationProvider::kNetwork, LocationProvider::kPassive,
        LocationProvider::kFused}) {
    if (name == provider_name(p)) {
      out = p;
      return true;
    }
  }
  return false;
}

std::string_view granularity_name(Granularity granularity) {
  return granularity == Granularity::kFine ? "fine" : "coarse";
}

double provider_accuracy_m(LocationProvider provider, Granularity requested) {
  switch (provider) {
    case LocationProvider::kGps: return 8.0;
    case LocationProvider::kNetwork: return 800.0;
    case LocationProvider::kPassive: return 800.0;  // Whatever others got; worst case.
    case LocationProvider::kFused:
      return requested == Granularity::kFine ? 10.0 : 800.0;
  }
  return 800.0;
}

bool provider_yields_fine(LocationProvider provider, Granularity requested) {
  switch (provider) {
    case LocationProvider::kGps: return true;
    case LocationProvider::kFused: return requested == Granularity::kFine;
    case LocationProvider::kNetwork:
    case LocationProvider::kPassive: return false;
  }
  return false;
}

std::string provider_combo_label(const std::vector<LocationProvider>& providers) {
  LOCPRIV_EXPECT(!providers.empty());
  std::string label;
  // Fused first, then gps/network/passive — matching Table I's column
  // labels ("fused network").
  for (const LocationProvider p :
       {LocationProvider::kFused, LocationProvider::kGps, LocationProvider::kNetwork,
        LocationProvider::kPassive}) {
    if (std::find(providers.begin(), providers.end(), p) == providers.end()) continue;
    if (!label.empty()) label += ' ';
    label += provider_name(p);
  }
  return label;
}

}  // namespace locpriv::android
