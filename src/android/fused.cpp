#include "android/fused.hpp"

#include "util/expect.hpp"

namespace locpriv::android {

std::string_view fused_priority_name(FusedPriority priority) {
  switch (priority) {
    case FusedPriority::kHighAccuracy: return "PRIORITY_HIGH_ACCURACY";
    case FusedPriority::kBalancedPowerAccuracy: return "PRIORITY_BALANCED_POWER_ACCURACY";
    case FusedPriority::kLowPower: return "PRIORITY_LOW_POWER";
    case FusedPriority::kNoPower: return "PRIORITY_NO_POWER";
  }
  return "?";
}

FusedRequestPlan plan_fused_request(FusedPriority priority, const PermissionSet& held) {
  if (!held.any_location())
    throw SecurityException("fused requests require a location permission");
  FusedRequestPlan plan;
  switch (priority) {
    case FusedPriority::kHighAccuracy:
      if (!held.fine_location())
        throw SecurityException("PRIORITY_HIGH_ACCURACY requires ACCESS_FINE_LOCATION");
      plan.provider = LocationProvider::kFused;
      plan.granularity = Granularity::kFine;
      return plan;
    case FusedPriority::kBalancedPowerAccuracy:
      plan.provider = LocationProvider::kFused;
      // Balanced serves the best granularity the permissions allow.
      plan.granularity = held.fine_location() ? Granularity::kFine : Granularity::kCoarse;
      return plan;
    case FusedPriority::kLowPower:
      plan.provider = LocationProvider::kFused;
      plan.granularity = Granularity::kCoarse;
      return plan;
    case FusedPriority::kNoPower:
      plan.provider = LocationProvider::kPassive;
      plan.granularity = Granularity::kCoarse;
      return plan;
  }
  return plan;
}

FusedLocationClient::FusedLocationClient(LocationManager& manager, std::string package,
                                         const PermissionSet& held)
    : manager_(&manager), package_(std::move(package)), held_(&held) {
  LOCPRIV_EXPECT(!package_.empty());
}

void FusedLocationClient::request_updates(FusedPriority priority,
                                          std::int64_t interval_s, std::int64_t now_s) {
  LOCPRIV_EXPECT(interval_s >= 1);
  const FusedRequestPlan plan = plan_fused_request(priority, *held_);
  if (active_) remove_updates();
  manager_->request_updates(package_, plan.provider, interval_s, plan.granularity,
                            *held_, now_s);
  active_ = true;
  active_provider_ = plan.provider;
}

void FusedLocationClient::remove_updates() {
  if (!active_) return;
  manager_->remove_updates(package_, active_provider_);
  active_ = false;
}

bool FusedLocationClient::last_location(Location& out) const {
  if (!manager_->has_last_known()) return false;
  out = manager_->last_known();
  return true;
}

}  // namespace locpriv::android
