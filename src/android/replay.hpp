// Trace replay: carries the simulated handset along a recorded GPS trace so
// that whatever apps are installed sample the *moving* device through the
// real framework path (registration -> scheduled delivery -> listener),
// instead of the analytical decimate() shortcut. Used by the end-to-end
// attack example and by the test asserting the two models agree.
#pragma once

#include <cstdint>
#include <vector>

#include "android/device.hpp"
#include "trace/trajectory.hpp"

namespace locpriv::android {

/// Replays `points` on `device`: for every fix the device moves there and
/// the framework ticks through the gap to the next fix (the device holds
/// its last position across recording gaps — the phone does not stop
/// existing when the logger pauses). Deliveries accumulate in
/// device.location_manager().delivery_log().
///
/// Returns the number of framework ticks executed.
///
/// With sync_clock = true the clock is first synced to just before the
/// first fix; since a time sync requires a quiet framework, launch the spy
/// apps *after* syncing (or sync manually with jump_to and pass
/// sync_clock = false — also the way to replay a second leg).
/// Preconditions: points time-ordered and entirely in the device's future.
std::size_t replay_trace(DeviceSimulator& device,
                         const std::vector<trace::TracePoint>& points,
                         bool sync_clock = true);

/// Convenience: the fixes delivered to `package` during a replay, as trace
/// points (position + delivery time) ready for the privacy pipeline.
std::vector<trace::TracePoint> collected_fixes(const LocationManager& manager,
                                               const std::string& package);

}  // namespace locpriv::android
