#include "android/permissions.hpp"

#include <algorithm>

namespace locpriv::android {

std::string_view permission_name(Permission permission) {
  switch (permission) {
    case Permission::kAccessFineLocation:
      return "android.permission.ACCESS_FINE_LOCATION";
    case Permission::kAccessCoarseLocation:
      return "android.permission.ACCESS_COARSE_LOCATION";
  }
  return "?";
}

bool parse_permission(std::string_view name, Permission& out) {
  if (name == permission_name(Permission::kAccessFineLocation)) {
    out = Permission::kAccessFineLocation;
    return true;
  }
  if (name == permission_name(Permission::kAccessCoarseLocation)) {
    out = Permission::kAccessCoarseLocation;
    return true;
  }
  return false;
}

PermissionSet::PermissionSet(std::vector<Permission> permissions)
    : permissions_(std::move(permissions)) {}

void PermissionSet::grant(Permission permission) {
  if (!holds(permission)) permissions_.push_back(permission);
}

bool PermissionSet::holds(Permission permission) const {
  return std::find(permissions_.begin(), permissions_.end(), permission) !=
         permissions_.end();
}

bool PermissionSet::any_location() const {
  return holds(Permission::kAccessFineLocation) ||
         holds(Permission::kAccessCoarseLocation);
}

bool AndroidManifest::declares_location() const {
  for (const Permission p : uses_permissions)
    if (p == Permission::kAccessFineLocation || p == Permission::kAccessCoarseLocation)
      return true;
  return false;
}

std::string AndroidManifest::declared_granularity() const {
  bool fine = false;
  bool coarse = false;
  for (const Permission p : uses_permissions) {
    if (p == Permission::kAccessFineLocation) fine = true;
    if (p == Permission::kAccessCoarseLocation) coarse = true;
  }
  if (fine && coarse) return "Fine & Coarse";
  if (fine) return "Fine";
  if (coarse) return "Coarse";
  return "None";
}

}  // namespace locpriv::android
