// The fused location provider interface (Google Play services'
// FusedLocationProviderApi, which Table I's "fused" column refers to).
// Client code asks for a *priority* rather than a provider; the client maps
// the priority onto the framework according to the permissions the app
// holds, mirroring the documented Play services behaviour:
//
//   PRIORITY_HIGH_ACCURACY   gps-grade fixes, requires fine location
//   PRIORITY_BALANCED        ~"block" accuracy; fine request if permitted,
//                            else coarse
//   PRIORITY_LOW_POWER       coarse city-block fixes
//   PRIORITY_NO_POWER        passive only - piggyback on other apps
#pragma once

#include <cstdint>
#include <string>

#include "android/location_manager.hpp"

namespace locpriv::android {

/// Play-services request priorities.
enum class FusedPriority {
  kHighAccuracy,
  kBalancedPowerAccuracy,
  kLowPower,
  kNoPower,
};

std::string_view fused_priority_name(FusedPriority priority);

/// What a priority maps to for a given permission set.
struct FusedRequestPlan {
  LocationProvider provider = LocationProvider::kFused;
  Granularity granularity = Granularity::kCoarse;
};

/// Resolves the provider/granularity a fused request uses. Throws
/// SecurityException when the priority is unsatisfiable with the held
/// permissions (kHighAccuracy without fine location; anything without any
/// location permission).
FusedRequestPlan plan_fused_request(FusedPriority priority, const PermissionSet& held);

/// Client-side wrapper: the API surface an app links against.
class FusedLocationClient {
 public:
  /// Binds to the framework for one app. The manager and permission set
  /// must outlive the client.
  FusedLocationClient(LocationManager& manager, std::string package,
                      const PermissionSet& held);

  /// Requests updates at `interval_s` with the given priority. Replaces any
  /// previous fused request of this app. interval_s >= 1.
  void request_updates(FusedPriority priority, std::int64_t interval_s,
                       std::int64_t now_s);

  /// Stops updates.
  void remove_updates();

  /// Last fix the framework cached (getLastLocation). Returns false when
  /// no fix has ever been produced on the device.
  bool last_location(Location& out) const;

  const std::string& package() const { return package_; }

 private:
  LocationManager* manager_;
  std::string package_;
  const PermissionSet* held_;
  bool active_ = false;
  LocationProvider active_provider_ = LocationProvider::kFused;
};

}  // namespace locpriv::android
