// Location providers and fixes, modelled on the Android 4.4 framework the
// paper's Nexus 4 testbed ran.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "geo/latlon.hpp"

namespace locpriv::android {

/// The four providers the paper observes (Table I).
enum class LocationProvider {
  kGps,      ///< Fine fixes, high power.
  kNetwork,  ///< Coarse cell/Wi-Fi fixes.
  kPassive,  ///< Piggybacks on fixes other apps request.
  kFused,    ///< Google Play services interface over the others.
};

inline constexpr int kLocationProviderCount = 4;

/// Provider name as dumpsys prints it ("gps", "network", "passive", "fused").
std::string_view provider_name(LocationProvider provider);

/// Parses a provider name; returns false for unknown names.
bool parse_provider(std::string_view name, LocationProvider& out);

/// Location granularity.
enum class Granularity { kFine, kCoarse };

std::string_view granularity_name(Granularity granularity);

/// One delivered fix.
struct Location {
  geo::LatLon position;
  double accuracy_m = 0.0;   ///< 1-sigma horizontal accuracy estimate.
  std::int64_t time_s = 0;   ///< Device time of the fix.
  LocationProvider provider = LocationProvider::kGps;
};

/// Typical horizontal accuracy of fixes from a provider, in meters.
double provider_accuracy_m(LocationProvider provider, Granularity requested);

/// Whether registering `provider` with `requested` granularity can yield
/// precise (fine) locations — the classification behind the paper's "68
/// apps access precise location": gps always; fused when fine is requested
/// and held; network/passive never by themselves.
bool provider_yields_fine(LocationProvider provider, Granularity requested);

/// A canonical label for a set of providers, matching Table I's columns
/// (e.g. "gps", "gps network", "fused network"). Providers are listed in
/// gps, network, passive, fused order. Precondition: non-empty set.
std::string provider_combo_label(const std::vector<LocationProvider>& providers);

}  // namespace locpriv::android
