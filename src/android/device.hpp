// The simulated handset: installed apps, foreground/background lifecycle,
// and a virtual clock driving the location framework — the stand-in for the
// paper's Nexus 4 testbed. The dynamic measurement stage manipulates apps
// exactly the way the paper describes ("launch the app, try to trigger
// location access, move the app to background, and finally close it") and
// observes the result through dumpsys and the delivery log.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "android/location_manager.hpp"
#include "android/permissions.hpp"

namespace locpriv::android {

/// App process state. Android 4.4 keeps backgrounded apps cached and
/// running; only Close (swipe away / force stop) ends them.
enum class AppState { kNotRunning, kForeground, kBackground };

std::string_view app_state_name(AppState state);

/// What an app actually does with location — the ground truth the market
/// catalog generates and the measurement pipeline tries to recover. Distinct
/// from the manifest: over-privileged apps declare permissions but never set
/// uses_location.
struct AppBehavior {
  bool uses_location = false;          ///< Ever requests location when run.
  bool auto_start_on_launch = false;   ///< Registers at launch, no user action.
  bool continues_in_background = false;///< Keeps its listeners when backgrounded.
  std::vector<LocationProvider> providers;  ///< Providers it registers.
  std::int64_t request_interval_s = 60;     ///< Update interval it asks for.
  Granularity requested_granularity = Granularity::kFine;
};

/// One installed app.
struct InstalledApp {
  AndroidManifest manifest;
  AppBehavior behavior;
  PermissionSet granted;   ///< Install-time grant of the declared permissions.
  AppState state = AppState::kNotRunning;
  bool location_active = false;  ///< Listeners currently registered.
};

/// The device.
class DeviceSimulator {
 public:
  /// `seed` drives fix noise; `position` is the device's physical location
  /// (stationary, like a phone on the measurement desk).
  DeviceSimulator(std::uint64_t seed, const geo::LatLon& position);

  /// Enables the Android 8 "background location limits" policy: while an
  /// app is backgrounded, its location requests are served at most once per
  /// `min_interval_s` (Android O computes location "only a few times each
  /// hour" for background apps), whatever interval the app asked for.
  /// Foregrounding restores the requested rate. The paper predates this
  /// policy; bench_android_limits shows how it changes the §III/§IV
  /// attack surface. Precondition: min_interval_s >= 1.
  void enable_background_location_limits(std::int64_t min_interval_s = 1800);

  /// True if the policy is active.
  bool background_location_limits() const { return background_min_interval_s_ > 0; }

  /// Installs an app, granting its declared permissions (Android 4.4
  /// install-time model). Throws ContractViolation if already installed.
  void install(AndroidManifest manifest, AppBehavior behavior);

  bool is_installed(const std::string& package) const;
  void uninstall(const std::string& package);

  /// Brings the app to the foreground (launching it if needed); the
  /// previously foregrounded app, if any, is moved to background — only one
  /// activity is on top of the screen. Auto-starting apps register their
  /// listeners here. Throws SecurityException if the app's behaviour
  /// requests a provider its permissions do not allow.
  void launch(const std::string& package);

  /// Simulates the user exercising the app's location feature in
  /// foreground. Precondition: the app is in the foreground.
  void trigger_location_use(const std::string& package);

  /// Home button: the foreground app is cached in background. Apps that do
  /// not continue in background lose their listeners here.
  void move_to_background(const std::string& package);

  /// Swipe-away / force stop: all listeners removed, process ends.
  void close(const std::string& package);

  /// Advances the virtual clock by `seconds`, ticking the framework once
  /// per second. seconds >= 0.
  void advance(std::int64_t seconds);

  /// Moves the device (the user carries the phone); subsequent deliveries
  /// report the new position.
  void set_position(const geo::LatLon& position) { position_ = position; }
  const geo::LatLon& position() const { return position_; }

  /// Sets the clock without ticking (a time sync at boot, before any app
  /// activity). Precondition: no location request is active.
  void jump_to(std::int64_t now_s);

  std::int64_t now_s() const { return now_s_; }
  LocationManager& location_manager() { return manager_; }
  const LocationManager& location_manager() const { return manager_; }

  /// Read access to an installed app. Throws ContractViolation if absent.
  const InstalledApp& app(const std::string& package) const;

  /// Number of installed apps.
  std::size_t installed_count() const { return apps_.size(); }

 private:
  InstalledApp& app_mutable(const std::string& package);
  void start_location(InstalledApp& app);
  void stop_location(InstalledApp& app);
  /// (Re-)registers the app's listeners at the rate its current lifecycle
  /// state allows under the active policy.
  void register_listeners(InstalledApp& app, bool backgrounded);

  std::map<std::string, InstalledApp> apps_;
  std::string foreground_;  ///< Package currently on top, empty if none.
  LocationManager manager_;
  geo::LatLon position_;
  std::int64_t now_s_ = 0;
  std::int64_t background_min_interval_s_ = 0;  ///< 0 = policy off.
};

}  // namespace locpriv::android
