// The simulated LocationManagerService: apps register location-update
// requests against providers; the device clock drives periodic deliveries;
// the passive provider piggybacks on everyone else's fixes. Permission
// checks mirror Android 4.4: gps requires ACCESS_FINE_LOCATION, network and
// passive accept either location permission, fused requires a permission
// matching the requested granularity.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "android/location.hpp"
#include "android/permissions.hpp"
#include "stats/rng.hpp"

namespace locpriv::android {

/// One active registration (what a dumpsys "Location Request" line shows).
struct LocationRequest {
  std::string package;
  LocationProvider provider = LocationProvider::kGps;
  std::int64_t interval_s = 0;       ///< Requested minimum update interval.
  Granularity granularity = Granularity::kFine;
  std::int64_t registered_at_s = 0;
  std::int64_t last_delivery_s = -1;  ///< -1 until the first delivery.
};

/// One delivered fix, as recorded by the framework's delivery log.
struct Delivery {
  std::string package;
  Location location;
};

/// What the fault layer decides about one scheduled fix. The distinction
/// between the two drop verdicts is whether the request's interval clock is
/// consumed: a fix lost in flight costs the app a full interval, whereas an
/// unavailable provider keeps the request due so delivery resumes on the
/// first healthy tick (how real hardware behaves after a GPS outage).
enum class FaultVerdict {
  kDeliver,      ///< Deliver (the fix may have been mutated by the hook).
  kDropConsume,  ///< Fix lost in flight; next delivery a full interval later.
  kDropRetry,    ///< Provider unavailable; the request retries next tick.
};

/// The location framework.
class LocationManager {
 public:
  /// Release hook: invoked for every fix about to be delivered; may mutate
  /// the fix (coarsen, substitute) or return false to suppress delivery
  /// entirely. This is the integration point for on-device LPPMs like
  /// LP-Guardian (see lppm::GuardianPolicy): the framework stays policy-
  /// agnostic, the policy sees every release.
  using ReleaseHook = std::function<bool(const std::string& package, Location& fix)>;

  /// Fault hook: consulted for every fix between scheduling and listener
  /// delivery, *before* the release hook; may mutate the fix (position
  /// noise, accuracy degradation, substitution) or veto the delivery. Unset
  /// means a perfect substrate — the default path is unchanged. This is the
  /// integration point for sim::FaultInjector.
  using FaultHook = std::function<FaultVerdict(const LocationRequest& request,
                                               Location& fix)>;

  /// `noise` drives per-fix accuracy jitter.
  explicit LocationManager(stats::Rng noise);

  /// Installs (or clears, with nullptr) the release hook.
  void set_release_hook(ReleaseHook hook) { release_hook_ = std::move(hook); }

  /// Installs (or clears, with nullptr) the fault hook.
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Registers `package` for updates from `provider` every `interval_s`
  /// seconds. Throws SecurityException if `held` lacks the permission the
  /// provider requires. Re-registering the same (package, provider)
  /// replaces the previous request. interval_s >= 1.
  void request_updates(const std::string& package, LocationProvider provider,
                       std::int64_t interval_s, Granularity granularity,
                       const PermissionSet& held, std::int64_t now_s);

  /// Removes the (package, provider) registration if present.
  void remove_updates(const std::string& package, LocationProvider provider);

  /// Removes every registration of `package` (app closed / killed).
  void remove_all(const std::string& package);

  /// Active registrations, in registration order.
  const std::vector<LocationRequest>& active_requests() const { return requests_; }

  /// Registrations of one package.
  std::vector<LocationRequest> requests_of(const std::string& package) const;

  /// Advances to `now_s`, delivering fixes that have come due. `position`
  /// is the device's true position at delivery time. Appends to the
  /// delivery log and returns the number of fixes delivered.
  std::size_t tick(std::int64_t now_s, const geo::LatLon& position);

  /// The cached most recent fix per Android's getLastKnownLocation — set by
  /// any delivery; empty optional semantics via `has_last_known`.
  bool has_last_known() const { return has_last_known_; }
  const Location& last_known() const;

  /// Full delivery log (tests and the dynamic tester read this).
  const std::vector<Delivery>& delivery_log() const { return delivery_log_; }

  /// Drops the delivery log (between test phases).
  void clear_delivery_log() { delivery_log_.clear(); }

 private:
  void check_permission(LocationProvider provider, Granularity granularity,
                        const PermissionSet& held) const;
  Location make_fix(LocationProvider provider, Granularity granularity,
                    const geo::LatLon& position, std::int64_t now_s);

  std::vector<LocationRequest> requests_;
  ReleaseHook release_hook_;
  FaultHook fault_hook_;
  std::vector<Delivery> delivery_log_;
  Location last_known_{};
  bool has_last_known_ = false;
  stats::Rng noise_;
};

}  // namespace locpriv::android
