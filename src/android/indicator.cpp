#include "android/indicator.hpp"

#include <algorithm>
#include <set>

#include "util/expect.hpp"

namespace locpriv::android {

std::vector<IndicatorSpan> indicator_spans(const std::vector<Delivery>& log,
                                           std::int64_t linger_s) {
  LOCPRIV_EXPECT(linger_s >= 1);
  std::vector<IndicatorSpan> spans;
  std::set<std::string> current_packages;
  for (const auto& delivery : log) {
    const std::int64_t t = delivery.location.time_s;
    if (!spans.empty() && t <= spans.back().end_s) {
      // Extends the current span.
      spans.back().end_s = std::max(spans.back().end_s, t + linger_s);
      current_packages.insert(delivery.package);
      spans.back().packages.assign(current_packages.begin(), current_packages.end());
      continue;
    }
    IndicatorSpan span;
    span.begin_s = t;
    span.end_s = t + linger_s;
    span.packages = {delivery.package};
    spans.push_back(std::move(span));
    current_packages = {delivery.package};
  }
  return spans;
}

IndicatorAttribution attribute_indicator(const std::vector<IndicatorSpan>& spans) {
  IndicatorAttribution attribution;
  for (const auto& span : spans) {
    attribution.lit_s += span.duration_s();
    if (span.packages.size() == 1) {
      attribution.sole_s[span.packages.front()] += span.duration_s();
    } else {
      attribution.ambiguous_s += span.duration_s();
    }
  }
  return attribution;
}

}  // namespace locpriv::android
