#include "geo/geodesy.hpp"

#include <cmath>
#include <numbers>

#include "util/expect.hpp"

namespace locpriv::geo {

double deg_to_rad(double degrees) { return degrees * std::numbers::pi / 180.0; }
double rad_to_deg(double radians) { return radians * 180.0 / std::numbers::pi; }

namespace {

// Shared per-point cores: the scalar entry points and the batched *_from
// variants route through the same inline arithmetic (identical operations in
// identical order), so a batched distance is bit-for-bit the scalar one.
inline double haversine_core(double lat1, double cos_lat1, const LatLon& a,
                             const LatLon& b) {
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h = sin_dlat * sin_dlat + cos_lat1 * std::cos(lat2) * sin_dlon * sin_dlon;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

inline double equirectangular_core(const LatLon& a, const LatLon& b) {
  const double mean_lat = deg_to_rad((a.lat_deg + b.lat_deg) / 2.0);
  const double x = deg_to_rad(b.lon_deg - a.lon_deg) * std::cos(mean_lat);
  const double y = deg_to_rad(b.lat_deg - a.lat_deg);
  return kEarthRadiusMeters * std::sqrt(x * x + y * y);
}

}  // namespace

double haversine_m(const LatLon& a, const LatLon& b) {
  const double lat1 = deg_to_rad(a.lat_deg);
  return haversine_core(lat1, std::cos(lat1), a, b);
}

double equirectangular_m(const LatLon& a, const LatLon& b) {
  return equirectangular_core(a, b);
}

void haversine_from(const LatLon& origin, std::span<const LatLon> points,
                    std::span<double> out) {
  LOCPRIV_EXPECT(out.size() == points.size());
  const double lat1 = deg_to_rad(origin.lat_deg);
  const double cos_lat1 = std::cos(lat1);
  for (std::size_t i = 0; i < points.size(); ++i)
    out[i] = haversine_core(lat1, cos_lat1, origin, points[i]);
}

void equirectangular_from(const LatLon& origin, std::span<const LatLon> points,
                          std::span<double> out) {
  LOCPRIV_EXPECT(out.size() == points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    out[i] = equirectangular_core(origin, points[i]);
}

double bearing_deg(const LatLon& a, const LatLon& b) {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) - std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  double bearing = rad_to_deg(std::atan2(y, x));
  if (bearing < 0.0) bearing += 360.0;
  return bearing;
}

LatLon destination(const LatLon& origin, double bearing_degrees, double distance_m) {
  const double angular = distance_m / kEarthRadiusMeters;
  const double bearing = deg_to_rad(bearing_degrees);
  const double lat1 = deg_to_rad(origin.lat_deg);
  const double lon1 = deg_to_rad(origin.lon_deg);
  const double lat2 = std::asin(std::sin(lat1) * std::cos(angular) +
                                std::cos(lat1) * std::sin(angular) * std::cos(bearing));
  const double lon2 =
      lon1 + std::atan2(std::sin(bearing) * std::sin(angular) * std::cos(lat1),
                        std::cos(angular) - std::sin(lat1) * std::sin(lat2));
  LatLon out{rad_to_deg(lat2), rad_to_deg(lon2)};
  if (out.lon_deg > 180.0) out.lon_deg -= 360.0;
  if (out.lon_deg < -180.0) out.lon_deg += 360.0;
  return out;
}

LatLon centroid(const std::vector<LatLon>& points) {
  LOCPRIV_EXPECT(!points.empty());
  double lat_sum = 0.0;
  double lon_sum = 0.0;
  for (const auto& p : points) {
    lat_sum += p.lat_deg;
    lon_sum += p.lon_deg;
  }
  const auto n = static_cast<double>(points.size());
  return {lat_sum / n, lon_sum / n};
}

double polyline_length_m(const std::vector<LatLon>& points) {
  double total = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i)
    total += haversine_m(points[i - 1], points[i]);
  return total;
}

}  // namespace locpriv::geo
