// Geographic coordinate types. LatLon is a strongly typed value (I.4) so
// latitude/longitude can never be swapped silently at call sites that take
// two doubles.
#pragma once

namespace locpriv::geo {

/// Mean Earth radius in meters (IUGG).
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// WGS84-style geographic coordinate in decimal degrees.
struct LatLon {
  double lat_deg = 0.0;  ///< Latitude in [-90, 90].
  double lon_deg = 0.0;  ///< Longitude in [-180, 180].

  friend bool operator==(const LatLon&, const LatLon&) = default;
};

/// Planar offset in meters within a local tangent plane (East, North).
struct EastNorth {
  double east_m = 0.0;
  double north_m = 0.0;

  friend bool operator==(const EastNorth&, const EastNorth&) = default;
};

/// Axis-aligned geographic bounding box.
struct GeoBounds {
  double min_lat = 90.0;
  double max_lat = -90.0;
  double min_lon = 180.0;
  double max_lon = -180.0;

  /// Expands the box to contain `p`.
  void extend(const LatLon& p) {
    if (p.lat_deg < min_lat) min_lat = p.lat_deg;
    if (p.lat_deg > max_lat) max_lat = p.lat_deg;
    if (p.lon_deg < min_lon) min_lon = p.lon_deg;
    if (p.lon_deg > max_lon) max_lon = p.lon_deg;
  }

  /// True if no point has been added yet.
  bool empty() const { return min_lat > max_lat; }

  /// True if `p` lies inside (inclusive). Precondition: !empty().
  bool contains(const LatLon& p) const {
    return p.lat_deg >= min_lat && p.lat_deg <= max_lat && p.lon_deg >= min_lon &&
           p.lon_deg <= max_lon;
  }

  /// Geometric center. Precondition: !empty().
  LatLon center() const {
    return {(min_lat + max_lat) / 2.0, (min_lon + max_lon) / 2.0};
  }
};

}  // namespace locpriv::geo
