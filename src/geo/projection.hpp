// Local tangent-plane projection. The mobility simulator plans trips on a
// planar road grid and projects back to geographic coordinates; the
// coarsening defense snaps to a planar grid. Both use LocalProjection.
#pragma once

#include "geo/latlon.hpp"

namespace locpriv::geo {

/// Equirectangular local projection anchored at an origin. Accurate to well
/// under 0.1 % within the ~30 km extents used by the synthetic city.
class LocalProjection {
 public:
  /// Anchors the plane at `origin` (its projection is (0, 0)).
  explicit LocalProjection(const LatLon& origin);

  /// Geographic -> planar meters East/North of the origin.
  EastNorth to_plane(const LatLon& p) const;

  /// Planar -> geographic.
  LatLon to_geo(const EastNorth& p) const;

  const LatLon& origin() const { return origin_; }

 private:
  LatLon origin_;
  double meters_per_deg_lat_;
  double meters_per_deg_lon_;
};

/// Snaps a coordinate to the center of a square grid cell of `cell_m` meters
/// (the location-truncation / coarsening defense evaluated in the ablation
/// bench; cf. Micinski et al. and LP-Guardian in the paper's related work).
/// Precondition: cell_m > 0.
LatLon snap_to_grid(const LatLon& p, double cell_m, const LocalProjection& projection);

}  // namespace locpriv::geo
