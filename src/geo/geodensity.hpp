// Density-adaptive radius estimation over a GeoTree.
//
// A fixed first-guess radius makes k-NN degenerate: in a dense urban cell it
// sweeps in thousands of candidates for k = 10, in a sparse rural cell it
// comes back empty and forces many doubling rounds. DensityEstimator probes
// the tree's cell counts down the geohash levels around the query point —
// O(level) binary searches, memoised by the tree's LRU count cache — to read
// off the local point density and size the first disc to ~k expected points,
// so both regimes stay O(log n + k).
#pragma once

#include <cstddef>

#include "geo/geotree.hpp"
#include "geo/latlon.hpp"

namespace locpriv::geo {

class DensityEstimator {
 public:
  /// Result of a level descent around a query point.
  struct Probe {
    int level = 0;              ///< finest level whose cell still held min_count
    std::size_t count = 0;      ///< points in that cell
    double density_per_m2 = 0;  ///< count / cell area at the probe latitude
  };

  /// Borrows `tree`; the tree must outlive the estimator.
  explicit DensityEstimator(const GeoTree& tree) : tree_(&tree) {}

  /// Descends from the root toward `center`, stopping at the last level whose
  /// containing cell still holds at least `min_count` points.
  Probe probe(const LatLon& center, std::size_t min_count) const;

  /// Radius of a disc expected to contain ~k points at the local density
  /// (r = sqrt(k / (pi * density))), clamped to [kMinRadiusM, kMaxRadiusM].
  /// A k-NN caller treats this as a first guess and doubles on shortfall.
  double adaptive_radius(const LatLon& center, std::size_t k) const;

  static constexpr double kMinRadiusM = 1.0;
  static constexpr double kMaxRadiusM = 2.1e7;  // > half the earth's circumference

 private:
  const GeoTree* tree_;
};

}  // namespace locpriv::geo
