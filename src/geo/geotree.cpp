#include "geo/geotree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <numeric>

#include "geo/geodensity.hpp"
#include "geo/geodesy.hpp"
#include "util/expect.hpp"

namespace locpriv::geo {

namespace {

// Interleaves the low 32 bits of v so bit i lands at bit 2i.
inline std::uint64_t spread_bits(std::uint64_t v) {
  v &= 0x00000000FFFFFFFFull;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

// Inverse of spread_bits: gathers the even bits of v into the low 32 bits.
inline std::uint64_t compact_bits(std::uint64_t v) {
  v &= 0x5555555555555555ull;
  v = (v | (v >> 1)) & 0x3333333333333333ull;
  v = (v | (v >> 2)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v >> 4)) & 0x00FF00FF00FF00FFull;
  v = (v | (v >> 8)) & 0x0000FFFF0000FFFFull;
  v = (v | (v >> 16)) & 0x00000000FFFFFFFFull;
  return v;
}

// Cell index of a coordinate along one axis at `level`, clamped to the valid
// range so the axis maxima (lat 90, lon 180) land in the last cell.
inline std::uint64_t axis_cell(double value_deg, double origin_deg, double span_deg,
                               int level) {
  const double t = (value_deg - origin_deg) / span_deg;
  double cell = std::floor(t * static_cast<double>(1ull << level));
  const double max_cell = static_cast<double>((1ull << level) - 1);
  if (cell < 0.0) cell = 0.0;
  if (cell > max_cell) cell = max_cell;
  return static_cast<std::uint64_t>(cell);
}

// Largest level whose cell is still at least `span_deg` wide along an axis of
// total extent `axis_deg` — so an interval of that span covers <= 2 cells.
inline int level_for_span(double span_deg, double axis_deg) {
  if (!(span_deg > 0.0)) return kGeohashMaxLevel;
  int level = 0;
  double cell_deg = axis_deg;
  while (level < kGeohashMaxLevel && cell_deg * 0.5 >= span_deg) {
    cell_deg *= 0.5;
    ++level;
  }
  return level;
}

// Relative margin applied to disc bounding boxes. The boxes below are exact
// mathematical supersets of the metric disc; the margin only has to absorb
// floating-point rounding (~1e-16 relative), and candidates are refined with
// exact distances afterwards, so over-covering is always safe.
constexpr double kBoxSlack = 1.0 + 1e-9;

struct DiscBox {
  double lat_lo_deg = 0.0;
  double lat_hi_deg = 0.0;
  // For haversine the lon interval may extend past ±180 (antimeridian wrap);
  // for equirectangular it never wraps (the metric's raw lon delta doesn't).
  double lon_lo_deg = 0.0;
  double lon_hi_deg = 0.0;
  bool full_lon = false;
};

// Bounding box of the haversine disc: latitude swings the angular radius;
// longitude follows the tangent-meridian bound asin(sin(r/R) / cos(lat0)),
// degenerating to the full band when the disc reaches a pole.
DiscBox haversine_box(const LatLon& center, double radius_m) {
  DiscBox box;
  const double ang = radius_m / kEarthRadiusMeters * kBoxSlack + 1e-12;
  const double dlat_deg = rad_to_deg(ang);
  box.lat_lo_deg = center.lat_deg - dlat_deg;
  box.lat_hi_deg = center.lat_deg + dlat_deg;
  const double cos_lat0 = std::cos(deg_to_rad(center.lat_deg));
  const double sin_ang = std::sin(std::min(ang, std::numbers::pi / 2.0));
  if (box.lat_lo_deg <= -90.0 || box.lat_hi_deg >= 90.0 || sin_ang >= cos_lat0) {
    box.full_lon = true;
    return box;
  }
  const double dlon_deg = rad_to_deg(std::asin(sin_ang / cos_lat0)) * kBoxSlack;
  box.lon_lo_deg = center.lon_deg - dlon_deg;
  box.lon_hi_deg = center.lon_deg + dlon_deg;
  return box;
}

// Bounding box of the equirectangular disc. d >= R*|dlat|, so latitude gets
// the same swing; |dlon| <= (r/R) / cos(mean_lat), bounded over the band of
// mean latitudes the lat interval allows.
DiscBox equirectangular_box(const LatLon& center, double radius_m) {
  DiscBox box;
  const double ang = radius_m / kEarthRadiusMeters * kBoxSlack + 1e-12;
  const double dlat_deg = rad_to_deg(ang);
  box.lat_lo_deg = center.lat_deg - dlat_deg;
  box.lat_hi_deg = center.lat_deg + dlat_deg;
  const double band_lo =
      (center.lat_deg + std::max(-90.0, box.lat_lo_deg)) / 2.0;
  const double band_hi = (center.lat_deg + std::min(90.0, box.lat_hi_deg)) / 2.0;
  const double cos_min = std::min(std::cos(deg_to_rad(band_lo)),
                                  std::cos(deg_to_rad(band_hi)));
  if (cos_min <= 1e-9) {
    box.full_lon = true;
    return box;
  }
  const double dlon_deg = rad_to_deg(ang / cos_min) * kBoxSlack;
  box.lon_lo_deg = std::max(-180.0, center.lon_deg - dlon_deg);
  box.lon_hi_deg = std::min(180.0, center.lon_deg + dlon_deg);
  if (box.lon_hi_deg - box.lon_lo_deg >= 360.0) box.full_lon = true;
  return box;
}

DiscBox disc_box(const LatLon& center, double radius_m, GeoTree::Metric metric) {
  return metric == GeoTree::Metric::kHaversine ? haversine_box(center, radius_m)
                                               : equirectangular_box(center, radius_m);
}

}  // namespace

std::uint64_t geohash_encode(const LatLon& p) {
  const std::uint64_t lat_bits = axis_cell(p.lat_deg, -90.0, 180.0, kGeohashMaxLevel);
  const std::uint64_t lon_bits = axis_cell(p.lon_deg, -180.0, 360.0, kGeohashMaxLevel);
  return spread_bits(lat_bits) | (spread_bits(lon_bits) << 1);
}

std::uint64_t geohash_prefix(std::uint64_t code, int level) {
  LOCPRIV_EXPECT(level >= 0 && level <= kGeohashMaxLevel);
  return code >> (2 * (kGeohashMaxLevel - level));
}

std::uint64_t geohash_cell(std::uint64_t lat_bits, std::uint64_t lon_bits, int level) {
  LOCPRIV_EXPECT(level >= 0 && level <= kGeohashMaxLevel);
  LOCPRIV_EXPECT(lat_bits < (1ull << level) && lon_bits < (1ull << level));
  return spread_bits(lat_bits) | (spread_bits(lon_bits) << 1);
}

LatLon geohash_cell_center(std::uint64_t prefix, int level) {
  LOCPRIV_EXPECT(level >= 0 && level <= kGeohashMaxLevel);
  const double cells = static_cast<double>(1ull << level);
  const double lat_bits = static_cast<double>(compact_bits(prefix));
  const double lon_bits = static_cast<double>(compact_bits(prefix >> 1));
  return {-90.0 + (lat_bits + 0.5) * 180.0 / cells,
          -180.0 + (lon_bits + 0.5) * 360.0 / cells};
}

GeoTree::GeoTree(std::vector<LatLon> points, std::size_t count_cache_capacity)
    : points_(std::move(points)) {
  LOCPRIV_EXPECT(points_.size() < std::numeric_limits<std::uint32_t>::max());
  cache_.capacity = count_cache_capacity;
  const std::size_t n = points_.size();
  std::vector<std::uint64_t> full(n);
  for (std::size_t i = 0; i < n; ++i) full[i] = geohash_encode(points_[i]);
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0u);
  std::sort(order_.begin(), order_.end(), [&full](std::uint32_t a, std::uint32_t b) {
    return full[a] != full[b] ? full[a] < full[b] : a < b;
  });
  codes_.resize(n);
  for (std::size_t i = 0; i < n; ++i) codes_[i] = full[order_[i]];
}

std::pair<std::size_t, std::size_t> GeoTree::cell_range(std::uint64_t prefix,
                                                        int level) const {
  LOCPRIV_EXPECT(level >= 0 && level <= kGeohashMaxLevel);
  const int shift = 2 * (kGeohashMaxLevel - level);
  const std::uint64_t lo_code = prefix << shift;
  const std::uint64_t hi_code = (prefix + 1) << shift;
  const auto lo = std::lower_bound(codes_.begin(), codes_.end(), lo_code);
  const auto hi = std::lower_bound(lo, codes_.end(), hi_code);
  return {static_cast<std::size_t>(lo - codes_.begin()),
          static_cast<std::size_t>(hi - codes_.begin())};
}

std::size_t GeoTree::cell_count(std::uint64_t prefix, int level) const {
  LOCPRIV_EXPECT(level >= 0 && level <= kGeohashMaxLevel);
  if (cache_.capacity == 0) {
    const auto [lo, hi] = cell_range(prefix, level);
    return hi - lo;
  }
  const std::uint64_t key = (prefix << 5) | static_cast<std::uint64_t>(level);
  if (auto it = cache_.entries.find(key); it != cache_.entries.end()) {
    cache_.recency.splice(cache_.recency.begin(), cache_.recency, it->second.second);
    return it->second.first;
  }
  const auto [lo, hi] = cell_range(prefix, level);
  const std::size_t count = hi - lo;
  cache_.recency.push_front(key);
  cache_.entries.emplace(key, std::make_pair(count, cache_.recency.begin()));
  if (cache_.entries.size() > cache_.capacity) {
    cache_.entries.erase(cache_.recency.back());
    cache_.recency.pop_back();
  }
  return count;
}

std::vector<std::uint32_t> GeoTree::cell_indices(std::uint64_t prefix, int level) const {
  const auto [lo, hi] = cell_range(prefix, level);
  std::vector<std::uint32_t> out(order_.begin() + static_cast<std::ptrdiff_t>(lo),
                                 order_.begin() + static_cast<std::ptrdiff_t>(hi));
  std::sort(out.begin(), out.end());
  return out;
}

void GeoTree::collect_cells(std::uint64_t lat_lo, std::uint64_t lat_hi,
                            std::uint64_t lon_lo, std::uint64_t lon_hi, int level,
                            std::vector<std::pair<std::size_t, std::size_t>>& ranges) const {
  for (std::uint64_t lat = lat_lo; lat <= lat_hi; ++lat) {
    for (std::uint64_t lon = lon_lo; lon <= lon_hi; ++lon) {
      const auto range = cell_range(geohash_cell(lat, lon, level), level);
      if (range.first < range.second) ranges.push_back(range);
    }
  }
}

std::vector<std::pair<std::size_t, std::size_t>> GeoTree::cover_disc(
    const LatLon& center, double radius_m, Metric metric) const {
  const DiscBox box = disc_box(center, radius_m, metric);
  const double lat_span = box.lat_hi_deg - box.lat_lo_deg;
  const double lon_span = box.full_lon ? 360.0 : box.lon_hi_deg - box.lon_lo_deg;
  const int level =
      std::min(level_for_span(lat_span, 180.0), level_for_span(lon_span, 360.0));
  const std::uint64_t max_cell = (1ull << level) - 1;
  const std::uint64_t lat_lo = axis_cell(box.lat_lo_deg, -90.0, 180.0, level);
  const std::uint64_t lat_hi = axis_cell(box.lat_hi_deg, -90.0, 180.0, level);

  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  if (box.full_lon || box.lon_hi_deg - box.lon_lo_deg >= 360.0) {
    collect_cells(lat_lo, lat_hi, 0, max_cell, level, ranges);
    return ranges;
  }
  // Split an interval that crosses the antimeridian into its two wrapped
  // halves (at most one side can stick out, since the width is < 360). At
  // coarse levels the halves can land in overlapping cell ranges; when they
  // touch, sweep the whole longitude axis once instead of double-counting.
  std::uint64_t lon_cell_lo;
  std::uint64_t lon_cell_hi;
  if (box.lon_lo_deg < -180.0) {
    const std::uint64_t wrap_lo =
        axis_cell(box.lon_lo_deg + 360.0, -180.0, 360.0, level);
    const std::uint64_t main_hi = axis_cell(box.lon_hi_deg, -180.0, 360.0, level);
    if (wrap_lo <= main_hi) {
      collect_cells(lat_lo, lat_hi, 0, max_cell, level, ranges);
      return ranges;
    }
    collect_cells(lat_lo, lat_hi, wrap_lo, max_cell, level, ranges);
    lon_cell_lo = 0;
    lon_cell_hi = main_hi;
  } else if (box.lon_hi_deg > 180.0) {
    const std::uint64_t wrap_hi =
        axis_cell(box.lon_hi_deg - 360.0, -180.0, 360.0, level);
    const std::uint64_t main_lo = axis_cell(box.lon_lo_deg, -180.0, 360.0, level);
    if (wrap_hi >= main_lo) {
      collect_cells(lat_lo, lat_hi, 0, max_cell, level, ranges);
      return ranges;
    }
    collect_cells(lat_lo, lat_hi, 0, wrap_hi, level, ranges);
    lon_cell_lo = main_lo;
    lon_cell_hi = max_cell;
  } else {
    lon_cell_lo = axis_cell(box.lon_lo_deg, -180.0, 360.0, level);
    lon_cell_hi = axis_cell(box.lon_hi_deg, -180.0, 360.0, level);
  }
  collect_cells(lat_lo, lat_hi, lon_cell_lo, lon_cell_hi, level, ranges);
  return ranges;
}

std::vector<std::uint32_t> GeoTree::query_rect(double lat_lo_deg, double lat_hi_deg,
                                               double lon_lo_deg,
                                               double lon_hi_deg) const {
  LOCPRIV_EXPECT(lat_lo_deg <= lat_hi_deg && lon_lo_deg <= lon_hi_deg);
  std::vector<std::uint32_t> out;
  if (points_.empty()) return out;
  const int level = std::min(level_for_span(lat_hi_deg - lat_lo_deg, 180.0),
                             level_for_span(lon_hi_deg - lon_lo_deg, 360.0));
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  collect_cells(axis_cell(lat_lo_deg, -90.0, 180.0, level),
                axis_cell(lat_hi_deg, -90.0, 180.0, level),
                axis_cell(lon_lo_deg, -180.0, 360.0, level),
                axis_cell(lon_hi_deg, -180.0, 360.0, level), level, ranges);
  for (const auto& [lo, hi] : ranges) {
    for (std::size_t pos = lo; pos < hi; ++pos) {
      const LatLon& p = points_[order_[pos]];
      if (p.lat_deg >= lat_lo_deg && p.lat_deg <= lat_hi_deg &&
          p.lon_deg >= lon_lo_deg && p.lon_deg <= lon_hi_deg) {
        out.push_back(order_[pos]);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<GeoTree::Hit> GeoTree::query_radius(const LatLon& center, double radius_m,
                                                Metric metric) const {
  LOCPRIV_EXPECT(radius_m >= 0.0);
  std::vector<Hit> hits;
  if (points_.empty()) return hits;
  const auto ranges = cover_disc(center, radius_m, metric);
  std::vector<LatLon> candidates;
  std::vector<std::uint32_t> indices;
  for (const auto& [lo, hi] : ranges) {
    for (std::size_t pos = lo; pos < hi; ++pos) {
      indices.push_back(order_[pos]);
      candidates.push_back(points_[order_[pos]]);
    }
  }
  std::vector<double> distances(candidates.size());
  if (metric == Metric::kHaversine) {
    haversine_from(center, candidates, distances);
  } else {
    equirectangular_from(center, candidates, distances);
  }
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (distances[i] <= radius_m) hits.push_back({indices[i], distances[i]});
  }
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    return a.distance_m != b.distance_m ? a.distance_m < b.distance_m
                                        : a.index < b.index;
  });
  return hits;
}

bool GeoTree::any_within(const LatLon& center, double radius_m, Metric metric) const {
  LOCPRIV_EXPECT(radius_m >= 0.0);
  if (points_.empty()) return false;
  const auto ranges = cover_disc(center, radius_m, metric);
  for (const auto& [lo, hi] : ranges) {
    for (std::size_t pos = lo; pos < hi; ++pos) {
      const LatLon& p = points_[order_[pos]];
      const double d = metric == Metric::kHaversine ? haversine_m(center, p)
                                                    : equirectangular_m(center, p);
      if (d <= radius_m) return true;
    }
  }
  return false;
}

std::vector<GeoTree::Hit> GeoTree::query_knn(const LatLon& center, std::size_t k) const {
  if (k == 0 || points_.empty()) return {};
  k = std::min(k, points_.size());
  const double radius_max = std::numbers::pi * kEarthRadiusMeters + 1.0;
  double radius = DensityEstimator(*this).adaptive_radius(center, k);
  for (;;) {
    auto hits = query_radius(center, std::min(radius, radius_max), Metric::kHaversine);
    if (hits.size() >= k || radius >= radius_max) {
      hits.resize(std::min(k, hits.size()));
      return hits;
    }
    radius *= 2.0;
  }
}

GeoCellIndex::GeoCellIndex(double cell_m) {
  LOCPRIV_EXPECT(cell_m > 0.0);
  // Largest level whose latitude cell height still covers cell_m.
  int level = 0;
  double height_m = std::numbers::pi * kEarthRadiusMeters;
  while (level < kGeohashMaxLevel && height_m * 0.5 >= cell_m) {
    height_m *= 0.5;
    ++level;
  }
  level_ = level;
}

void GeoCellIndex::insert(std::uint32_t id, const LatLon& p) {
  const std::uint64_t cell = geohash_prefix(geohash_encode(p), level_);
  LOCPRIV_EXPECT(cell_of_.emplace(id, cell).second);
  auto& ids = cells_[cell];
  ids.insert(std::lower_bound(ids.begin(), ids.end(), id), id);
}

void GeoCellIndex::move(std::uint32_t id, const LatLon& p) {
  const auto it = cell_of_.find(id);
  LOCPRIV_EXPECT(it != cell_of_.end());
  const std::uint64_t cell = geohash_prefix(geohash_encode(p), level_);
  if (cell == it->second) return;
  auto& old_ids = cells_[it->second];
  old_ids.erase(std::lower_bound(old_ids.begin(), old_ids.end(), id));
  if (old_ids.empty()) cells_.erase(it->second);
  it->second = cell;
  auto& ids = cells_[cell];
  ids.insert(std::lower_bound(ids.begin(), ids.end(), id), id);
}

void GeoCellIndex::candidates_within(const LatLon& center, double radius_m,
                                     std::vector<std::uint32_t>& out) const {
  LOCPRIV_EXPECT(radius_m >= 0.0);
  const std::size_t base = out.size();
  const DiscBox box = equirectangular_box(center, radius_m);
  const std::uint64_t max_cell = (1ull << level_) - 1;
  const std::uint64_t lat_lo = axis_cell(box.lat_lo_deg, -90.0, 180.0, level_);
  const std::uint64_t lat_hi = axis_cell(box.lat_hi_deg, -90.0, 180.0, level_);
  const std::uint64_t lon_lo =
      box.full_lon ? 0 : axis_cell(box.lon_lo_deg, -180.0, 360.0, level_);
  const std::uint64_t lon_hi =
      box.full_lon ? max_cell : axis_cell(box.lon_hi_deg, -180.0, 360.0, level_);
  // Near the poles the longitude margin can explode into thousands of cells;
  // cheaper there to hand back everything and let the caller's exact-distance
  // refine sort it out (still deterministic: ids are sorted below).
  constexpr std::uint64_t kMaxProbedCells = 4096;
  if ((lat_hi - lat_lo + 1) * (lon_hi - lon_lo + 1) > kMaxProbedCells) {
    for (const auto& [id, cell] : cell_of_) out.push_back(id);
  } else {
    for (std::uint64_t lat = lat_lo; lat <= lat_hi; ++lat) {
      for (std::uint64_t lon = lon_lo; lon <= lon_hi; ++lon) {
        const auto it = cells_.find(geohash_cell(lat, lon, level_));
        if (it == cells_.end()) continue;
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
    }
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end());
}

}  // namespace locpriv::geo
