// Distance and bearing computations on the sphere.
#pragma once

#include <span>
#include <vector>

#include "geo/latlon.hpp"

namespace locpriv::geo {

/// Degrees -> radians.
double deg_to_rad(double degrees);
/// Radians -> degrees.
double rad_to_deg(double radians);

/// Great-circle distance in meters (haversine). Exact on the sphere; used
/// wherever traces may span many kilometers.
double haversine_m(const LatLon& a, const LatLon& b);

/// Equirectangular approximation of distance in meters. Within the ~100 m
/// scales of PoI extraction it differs from haversine by < 0.01 % and is
/// several times cheaper, so the stay-point inner loop uses it.
double equirectangular_m(const LatLon& a, const LatLon& b);

/// Batched haversine from one origin to many points: out[i] =
/// haversine_m(origin, points[i]), with the origin's latitude conversion and
/// cosine hoisted out of the loop. Shares its per-point core with
/// haversine_m, so results are identical to the per-pair calls.
/// Precondition: out.size() == points.size().
void haversine_from(const LatLon& origin, std::span<const LatLon> points,
                    std::span<double> out);

/// Batched equirectangular distances from one origin: out[i] =
/// equirectangular_m(origin, points[i]). The mean-latitude cosine depends on
/// both endpoints, so only the origin conversion hoists; the per-point core
/// is shared with equirectangular_m for identical results.
/// Precondition: out.size() == points.size().
void equirectangular_from(const LatLon& origin, std::span<const LatLon> points,
                          std::span<double> out);

/// Initial great-circle bearing from `a` to `b` in degrees [0, 360).
double bearing_deg(const LatLon& a, const LatLon& b);

/// Destination reached from `origin` after traveling `distance_m` meters on
/// the given initial bearing (spherical direct problem).
LatLon destination(const LatLon& origin, double bearing_degrees, double distance_m);

/// Arithmetic centroid of points (valid for clusters far from the poles and
/// the antimeridian, which holds for all workloads here).
/// Precondition: points non-empty.
LatLon centroid(const std::vector<LatLon>& points);

/// Total haversine length of a polyline in meters (0 for < 2 points).
double polyline_length_m(const std::vector<LatLon>& points);

}  // namespace locpriv::geo
