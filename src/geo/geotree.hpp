// Hierarchical geohash spatial index.
//
// Every spatial hot path in the pipeline — PoI cluster assignment, PoI
// recovery matching, region containment, adversary candidate-fix lookup —
// used to scan whole point containers linearly. GeoTree replaces those
// scans with O(log n + k) queries over a geohash prefix ordering:
//
//   * Points are encoded into 52-bit interleaved (Morton / Z-order)
//     lat/lon cell codes at `kGeohashMaxLevel` and kept in one array
//     sorted by (code, original index). A geohash *cell* at level L is a
//     code prefix of 2L bits, and — the property everything below rests
//     on — the points of any cell form one contiguous range of that
//     sorted array, found by binary-search descent. There is no pointer
//     tree to allocate or chase: "descending a level" appends two bits
//     to the prefix and re-narrows the range.
//   * Radius and k-nearest queries cover the query disc with a handful
//     of cells at a radius-matched level, then refine candidates with
//     exact distances (batched via geo::haversine_from, or per-pair
//     equirectangular_m when a caller needs parity with the planar
//     approximation the paper pipeline uses at PoI scales).
//   * Subtree (cell) counts back a density estimate (geodensity.hpp)
//     that picks the first-guess radius for k-NN so urban and rural
//     queries both stay O(log n + k); counts are memoised in a small
//     LRU cache.
//
// Determinism contract: construction order, query results, and result
// ordering depend only on the input coordinates and original indices —
// ties are broken by ascending index, never by address or hash-iteration
// order — so resume byte-identity and isolate-vs-inproc parity hold with
// the index on the hot path. Queries are logically const but touch the
// mutable count cache; do not share one instance across threads without
// external synchronisation (per-user/per-cell trees, the repo-wide
// pattern, need none).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "geo/latlon.hpp"

namespace locpriv::geo {

/// Finest cell level: 26 bits per axis (52-bit codes), ~0.3 m of latitude
/// per cell — below GPS noise, so deeper levels would never split anything.
inline constexpr int kGeohashMaxLevel = 26;

/// Full-precision interleaved cell code of a coordinate (level
/// kGeohashMaxLevel). Latitude occupies even bits, longitude odd bits.
std::uint64_t geohash_encode(const LatLon& p);

/// The 2*level-bit prefix of a full-precision code: the cell containing it
/// at `level`. Precondition: 0 <= level <= kGeohashMaxLevel.
std::uint64_t geohash_prefix(std::uint64_t code, int level);

/// Center coordinate of the cell `prefix` at `level` (inverse of encode up
/// to the cell). Precondition: prefix < 2^(2*level).
LatLon geohash_cell_center(std::uint64_t prefix, int level);

/// Interleaves per-axis cell indices into the cell prefix at `level`.
/// Preconditions: lat_bits, lon_bits < 2^level.
std::uint64_t geohash_cell(std::uint64_t lat_bits, std::uint64_t lon_bits, int level);

/// Static geohash-prefix index over an immutable point set.
class GeoTree {
 public:
  /// Which distance refines candidates (and defines the query semantics).
  /// kHaversine wraps longitude across the antimeridian, exactly like
  /// haversine_m; kEquirectangular reproduces equirectangular_m, whose raw
  /// longitude difference does NOT wrap — required for byte-identical
  /// parity with the linear scans it replaces.
  enum class Metric { kHaversine, kEquirectangular };

  /// One query result: the point's index in the constructor vector and its
  /// exact distance from the query center under the query's metric.
  struct Hit {
    std::uint32_t index = 0;
    double distance_m = 0.0;

    friend bool operator==(const Hit&, const Hit&) = default;
  };

  GeoTree() = default;

  /// Indexes `points` (kept by value; indices in results refer to this
  /// vector). `count_cache_capacity` bounds the LRU cell-count cache.
  explicit GeoTree(std::vector<LatLon> points, std::size_t count_cache_capacity = 1024);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const LatLon& point(std::uint32_t index) const { return points_[index]; }
  const std::vector<LatLon>& points() const { return points_; }

  /// All points within `radius_m` of `center` (inclusive), sorted by
  /// (distance, index). Preconditions: radius_m >= 0.
  std::vector<Hit> query_radius(const LatLon& center, double radius_m,
                                Metric metric = Metric::kHaversine) const;

  /// True when at least one point lies within `radius_m` of `center`
  /// (inclusive) — the early-exit form of query_radius for existence tests.
  bool any_within(const LatLon& center, double radius_m,
                  Metric metric = Metric::kHaversine) const;

  /// Original indices (ascending) of the points inside the closed lat/lon
  /// rectangle, via a cell-prefix cover at a rectangle-matched level. The
  /// longitude interval does not wrap. Preconditions: lo <= hi per axis.
  std::vector<std::uint32_t> query_rect(double lat_lo_deg, double lat_hi_deg,
                                        double lon_lo_deg, double lon_hi_deg) const;

  /// The k nearest points to `center` under the haversine metric, sorted by
  /// (distance, index); all points when k >= size(). The first-guess search
  /// radius comes from the local cell density (geodensity.hpp) and doubles
  /// until k candidates are inside, so dense-urban and sparse-rural queries
  /// do comparable work.
  std::vector<Hit> query_knn(const LatLon& center, std::size_t k) const;

  /// Number of indexed points inside the cell `prefix` at `level`, via one
  /// binary-search descent; memoised in the LRU count cache.
  std::size_t cell_count(std::uint64_t prefix, int level) const;

  /// Original indices of the points inside the cell, ascending.
  std::vector<std::uint32_t> cell_indices(std::uint64_t prefix, int level) const;

  /// Half-open range [first, last) of the cell's points in the sorted code
  /// order (positions usable with sorted_code/sorted_index). Exposed for
  /// cell-prefix consumers (region containment) and tests.
  std::pair<std::size_t, std::size_t> cell_range(std::uint64_t prefix, int level) const;

  std::uint64_t sorted_code(std::size_t pos) const { return codes_[pos]; }
  std::uint32_t sorted_index(std::size_t pos) const { return order_[pos]; }

 private:
  friend class DensityEstimator;

  // Appends the sorted-range candidates of every level-`level` cell in the
  // inclusive per-axis index rectangle; longitude may wrap (two ranges).
  void collect_cells(std::uint64_t lat_lo, std::uint64_t lat_hi, std::uint64_t lon_lo,
                     std::uint64_t lon_hi, int level,
                     std::vector<std::pair<std::size_t, std::size_t>>& ranges) const;

  // Conservative cell cover of the metric disc (center, radius_m); the
  // chosen level keeps the cover at <= 2 cells per axis.
  std::vector<std::pair<std::size_t, std::size_t>> cover_disc(const LatLon& center,
                                                              double radius_m,
                                                              Metric metric) const;

  std::vector<LatLon> points_;        // original order
  std::vector<std::uint64_t> codes_;  // sorted full-precision codes
  std::vector<std::uint32_t> order_;  // codes_[i] encodes points_[order_[i]]

  // LRU cell-count cache: key -> (count, recency-list node). Purely a
  // memo of deterministic values, so cache state never affects results.
  struct CountCache {
    std::size_t capacity = 0;
    std::list<std::uint64_t> recency;  // front = most recent
    std::unordered_map<std::uint64_t,
                       std::pair<std::size_t, std::list<std::uint64_t>::iterator>>
        entries;
  };
  mutable CountCache cache_;
};

/// Dynamic single-level geohash-cell index over points that move — the
/// incremental companion of GeoTree for consumers that interleave inserts,
/// centroid updates, and radius candidate queries (greedy PoI clustering:
/// the running visit-weighted centroid drifts as stays join). Cells are
/// sized at construction so a radius-`cell_m` disc is covered by a 3x3 cell
/// neighbourhood at mid-latitudes; candidate enumeration recomputes the
/// exact longitude margin per query, so correctness does not depend on the
/// sizing. Query semantics are equirectangular (no longitude wrap), matching
/// the planar distance the clustering pipeline refines with.
class GeoCellIndex {
 public:
  /// `cell_m` is the target cell edge in meters, normally the query radius
  /// the consumer will use. Precondition: cell_m > 0.
  explicit GeoCellIndex(double cell_m);

  /// Indexes point `id` at `p`. Ids are the consumer's (PoI ids); inserting
  /// an id twice is a contract violation — use move().
  void insert(std::uint32_t id, const LatLon& p);

  /// Re-files `id` under its new position (no-op when the cell is unchanged).
  /// Precondition: id was inserted.
  void move(std::uint32_t id, const LatLon& p);

  /// Appends (ascending, deduplicated) every indexed id whose cell
  /// intersects the equirectangular disc — a superset of the ids within
  /// `radius_m`; callers refine with exact distances.
  void candidates_within(const LatLon& center, double radius_m,
                         std::vector<std::uint32_t>& out) const;

  std::size_t size() const { return cell_of_.size(); }

 private:
  int level_;
  // cell prefix -> ascending ids. Hash iteration order never escapes:
  // candidates are sorted before return.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells_;
  std::unordered_map<std::uint32_t, std::uint64_t> cell_of_;  // id -> cell
};

}  // namespace locpriv::geo
