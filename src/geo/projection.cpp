#include "geo/projection.hpp"

#include <cmath>
#include <numbers>

#include "geo/geodesy.hpp"
#include "util/expect.hpp"

namespace locpriv::geo {

LocalProjection::LocalProjection(const LatLon& origin) : origin_(origin) {
  // One degree of latitude is ~111.2 km everywhere; one degree of longitude
  // shrinks with cos(latitude).
  meters_per_deg_lat_ = kEarthRadiusMeters * std::numbers::pi / 180.0;
  meters_per_deg_lon_ = meters_per_deg_lat_ * std::cos(deg_to_rad(origin.lat_deg));
}

EastNorth LocalProjection::to_plane(const LatLon& p) const {
  return {(p.lon_deg - origin_.lon_deg) * meters_per_deg_lon_,
          (p.lat_deg - origin_.lat_deg) * meters_per_deg_lat_};
}

LatLon LocalProjection::to_geo(const EastNorth& p) const {
  return {origin_.lat_deg + p.north_m / meters_per_deg_lat_,
          origin_.lon_deg + p.east_m / meters_per_deg_lon_};
}

LatLon snap_to_grid(const LatLon& p, double cell_m, const LocalProjection& projection) {
  LOCPRIV_EXPECT(cell_m > 0.0);
  const EastNorth plane = projection.to_plane(p);
  const double east = (std::floor(plane.east_m / cell_m) + 0.5) * cell_m;
  const double north = (std::floor(plane.north_m / cell_m) + 0.5) * cell_m;
  return projection.to_geo({east, north});
}

}  // namespace locpriv::geo
