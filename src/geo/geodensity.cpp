#include "geo/geodensity.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "geo/geodesy.hpp"

namespace locpriv::geo {

namespace {

// Approximate area of a level-`level` cell at the given latitude. The cosine
// is floored so polar cells keep a nonzero area — a crude density there only
// shrinks the first-guess radius, which the k-NN doubling loop repairs.
double cell_area_m2(int level, double lat_deg) {
  const double cells = static_cast<double>(1ull << level);
  const double lat_height_m = std::numbers::pi * kEarthRadiusMeters / cells;
  const double cos_lat = std::max(1e-3, std::cos(deg_to_rad(lat_deg)));
  const double lon_width_m = 2.0 * std::numbers::pi * kEarthRadiusMeters * cos_lat / cells;
  return lat_height_m * lon_width_m;
}

}  // namespace

DensityEstimator::Probe DensityEstimator::probe(const LatLon& center,
                                                std::size_t min_count) const {
  Probe result;
  result.level = 0;
  result.count = tree_->size();
  const std::uint64_t code = geohash_encode(center);
  if (result.count >= min_count) {
    for (int level = 1; level <= kGeohashMaxLevel; ++level) {
      const std::size_t count = tree_->cell_count(geohash_prefix(code, level), level);
      if (count < min_count) break;
      result.level = level;
      result.count = count;
    }
  }
  result.density_per_m2 =
      static_cast<double>(result.count) / cell_area_m2(result.level, center.lat_deg);
  return result;
}

double DensityEstimator::adaptive_radius(const LatLon& center, std::size_t k) const {
  if (k == 0 || tree_->empty()) return kMinRadiusM;
  const Probe local = probe(center, k);
  if (local.count == 0 || local.density_per_m2 <= 0.0) return kMaxRadiusM;
  const double radius = std::sqrt(static_cast<double>(k) /
                                  (std::numbers::pi * local.density_per_m2));
  return std::clamp(radius, kMinRadiusM, kMaxRadiusM);
}

}  // namespace locpriv::geo
