// Privacy audit: what does the measured background-app population learn
// about one user? Crosses the Section III measurement (the intervals real
// background apps poll at) with the Section IV privacy pipeline, the way
// the paper's two halves combine.
//
//   $ ./examples/privacy_audit [user_index]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "market/catalog.hpp"
#include "market/study.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace locpriv;
  const std::size_t user = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 0;

  // Section III half: measure what intervals background apps actually use.
  market::CatalogConfig catalog_config;
  const market::MarketReport market =
      market::run_market_study(market::generate_catalog(catalog_config), 7);
  auto intervals = market.background_intervals;
  std::sort(intervals.begin(), intervals.end());

  // Section IV half: a mobility corpus and the analyzer.
  mobility::DatasetConfig dataset;
  dataset.user_count = 24;
  dataset.synthesis.days = 8;
  const core::PrivacyAnalyzer analyzer =
      core::PrivacyAnalyzer::from_synthetic(core::experiment_analyzer_config(), dataset);
  if (user >= analyzer.user_count()) {
    std::cerr << "user index out of range (have " << analyzer.user_count()
              << " users)\n";
    return 1;
  }

  const core::UserReference& reference = analyzer.reference(user);
  std::cout << "Auditing user " << reference.user_id << ": "
            << reference.pois.size() << " true PoIs, "
            << reference.movements.key_count() << " movement patterns\n"
            << "against the " << intervals.size()
            << " background apps measured in the market study.\n\n";

  // Representative apps: fastest, quartiles, slowest.
  util::ConsoleTable table({"app percentile", "interval", "PoIs seen", "sensitive",
                            "His_bin", "identified", "Deg_anonymity"});
  const std::pair<const char*, double> picks[] = {
      {"fastest", 0.0}, {"p25", 0.25}, {"median", 0.5}, {"p75", 0.75},
      {"p90", 0.90}, {"slowest", 1.0}};
  for (const auto& [label, quantile] : picks) {
    const std::size_t index = std::min(
        intervals.size() - 1,
        static_cast<std::size_t>(quantile * static_cast<double>(intervals.size())));
    const std::int64_t interval = intervals[index];
    const core::ExposureReport report = analyzer.evaluate_exposure(user, interval);
    const auto identification =
        analyzer.earliest_identification(user, privacy::Pattern::kMovements, interval);
    table.add_row({label, std::to_string(interval) + "s",
                   util::format_percent(report.poi_total.fraction(), 0),
                   util::format_percent(report.poi_sensitive.fraction(), 0),
                   report.breach_detected() ? "ALERT" : "ok",
                   identification.detected
                       ? "after " + util::format_percent(identification.fraction, 0)
                       : "no",
                   util::format_fixed(report.anonymity_movements, 2)});
  }
  table.print(std::cout);

  std::cout << "\nInterpretation: His_bin fires when the collected histogram fits\n"
               "this user's profile (either pattern - the paper's combined\n"
               "detector); 'identified' is when the adversary's chi-square match\n"
               "set collapses to this user alone; Deg_anonymity 0 = fully\n"
               "identified, 1 = hidden among all profiles.\n";
  return 0;
}
