// LP-Guardian on device: rerun the end-to-end background attack with the
// release policy installed in the platform, and compare what the spy app
// steals with and without protection.
//
//   $ ./examples/lp_guardian [interval_s]
#include <cstdlib>
#include <iostream>

#include "android/replay.hpp"
#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "lppm/policy.hpp"
#include "poi/clustering.hpp"
#include "privacy/detection.hpp"
#include "privacy/metrics.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace locpriv;

struct AttackOutcome {
  std::size_t stolen_fixes = 0;
  privacy::PoiRecovery recovery;
  bool identified = false;
};

AttackOutcome run_attack(const core::PrivacyAnalyzer& analyzer, std::size_t victim,
                         std::int64_t interval, const lppm::GuardianPolicy* policy) {
  const auto& reference = analyzer.reference(victim);
  android::DeviceSimulator phone(99, reference.points.front().position);
  phone.jump_to(reference.points.front().timestamp_s - 1);

  android::AndroidManifest manifest;
  manifest.package_name = "com.spy";
  manifest.uses_permissions = {android::Permission::kAccessFineLocation};
  android::AppBehavior behavior;
  behavior.uses_location = true;
  behavior.auto_start_on_launch = true;
  behavior.continues_in_background = true;
  behavior.providers = {android::LocationProvider::kGps};
  behavior.request_interval_s = interval;
  phone.install(manifest, behavior);
  phone.launch(manifest.package_name);
  phone.move_to_background(manifest.package_name);

  if (policy != nullptr) {
    phone.location_manager().set_release_hook(
        [&phone, policy](const std::string& package, android::Location& fix) {
          const bool backgrounded =
              phone.app(package).state == android::AppState::kBackground;
          return policy->apply(package, backgrounded, fix.position);
        });
  }

  android::replay_trace(phone, reference.points, /*sync_clock=*/false);
  const auto stolen =
      android::collected_fixes(phone.location_manager(), manifest.package_name);

  AttackOutcome outcome;
  outcome.stolen_fixes = stolen.size();
  const auto stays =
      poi::extract_stay_points(stolen, analyzer.config().extraction);
  const auto pois =
      poi::cluster_stay_points(stays, analyzer.config().extraction.radius_m);
  outcome.recovery = privacy::poi_recovery(reference.pois, pois,
                                           analyzer.config().extraction.radius_m);
  const auto observed = privacy::movement_histogram(pois, analyzer.grid());
  if (!observed.empty()) {
    const auto result = analyzer.adversary().identify(
        observed, privacy::Pattern::kMovements, analyzer.config().match);
    outcome.identified =
        result.matched.size() == 1 && result.matched.front() == victim;
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t interval = argc > 1 ? std::atoll(argv[1]) : 30;

  mobility::DatasetConfig dataset;
  dataset.user_count = 16;
  dataset.synthesis.days = 8;
  const core::PrivacyAnalyzer analyzer = core::PrivacyAnalyzer::from_synthetic(
      core::experiment_analyzer_config(), dataset);
  const std::size_t victim = 3;
  const auto& reference = analyzer.reference(victim);

  // The policy: coarse release in background, home blocked for everyone.
  // Home = the victim's most-dwelled reference PoI.
  const poi::Poi* home = &reference.pois.front();
  for (const auto& poi : reference.pois)
    if (poi.visit_count() > home->visit_count()) home = &poi;
  lppm::GuardianPolicy policy(analyzer.grid().projection().origin(), 1000.0);
  policy.protect_place(home->centroid, 200.0);

  std::cout << "victim: user " << reference.user_id << ", spy polling every "
            << interval << " s in background\n\n";
  util::ConsoleTable table(
      {"platform", "fixes stolen", "PoIs recovered", "identified"});
  const AttackOutcome naked = run_attack(analyzer, victim, interval, nullptr);
  const AttackOutcome guarded = run_attack(analyzer, victim, interval, &policy);
  table.add_row({"stock Android 4.4", std::to_string(naked.stolen_fixes),
                 util::format_percent(naked.recovery.fraction(), 0),
                 naked.identified ? "YES" : "no"});
  table.add_row({"with LP-Guardian policy", std::to_string(guarded.stolen_fixes),
                 util::format_percent(guarded.recovery.fraction(), 0),
                 guarded.identified ? "YES" : "no"});
  table.print(std::cout);

  std::cout << "\nThe policy coarsens background releases to 1 km cells and\n"
               "blocks fixes near the protected home, so the spy's stream\n"
               "no longer supports stay-point extraction or identification,\n"
               "while foreground apps would still get true fixes.\n";
  return 0;
}
