// End-to-end attack demo: the full chain the paper describes, with no
// analytical shortcuts —
//
//   mobility simulator -> the user's phone physically moves ->
//   a backgrounded app samples through the real framework path
//   (registration, scheduled delivery, dumpsys-visible) ->
//   the "LBS provider" hands the collected fixes to a third party ->
//   PoI extraction, His_bin, and identification against 20 profiles.
//
//   $ ./examples/end_to_end_attack [interval_s]
#include <cstdlib>
#include <iostream>

#include "android/dumpsys.hpp"
#include "android/replay.hpp"
#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "poi/clustering.hpp"
#include "privacy/detection.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace locpriv;
  const std::int64_t interval = argc > 1 ? std::atoll(argv[1]) : 30;

  // A 20-user world; user 7 is the victim.
  mobility::DatasetConfig dataset;
  dataset.user_count = 20;
  dataset.synthesis.days = 8;
  const core::AnalyzerConfig config = core::experiment_analyzer_config();
  const core::PrivacyAnalyzer analyzer =
      core::PrivacyAnalyzer::from_synthetic(config, dataset);
  const std::size_t victim = 7;
  const auto& reference = analyzer.reference(victim);
  std::cout << "victim: user " << reference.user_id << " with "
            << reference.points.size() << " true GPS fixes over 8 days\n";

  // The victim's phone, with an innocuous-looking app that keeps a gps
  // listener alive in background.
  android::DeviceSimulator phone(/*seed=*/1234, reference.points.front().position);
  phone.jump_to(reference.points.front().timestamp_s - 1);
  android::AndroidManifest manifest;
  manifest.package_name = "com.flashlight.plus";
  manifest.uses_permissions = {android::Permission::kAccessFineLocation,
                               android::Permission::kAccessCoarseLocation};
  android::AppBehavior behavior;
  behavior.uses_location = true;
  behavior.auto_start_on_launch = true;
  behavior.continues_in_background = true;
  behavior.providers = {android::LocationProvider::kGps};
  behavior.request_interval_s = interval;
  phone.install(manifest, behavior);
  phone.launch(manifest.package_name);
  phone.move_to_background(manifest.package_name);  // User opens something else.

  std::cout << "\nwhat dumpsys shows while the user thinks the app is idle:\n"
            << android::dumpsys_location_report(phone.location_manager(),
                                                phone.now_s());

  // Eight days of life, replayed through the framework.
  const std::size_t ticks = android::replay_trace(phone, reference.points,
                                                  /*sync_clock=*/false);
  const auto stolen = android::collected_fixes(phone.location_manager(),
                                               manifest.package_name);
  std::cout << "\nreplayed " << ticks << " device-seconds; the app exfiltrated "
            << stolen.size() << " fixes (every " << interval << " s)\n";

  // Third-party analysis of the exfiltrated stream.
  const auto stays = poi::extract_stay_points(stolen, config.extraction);
  const auto pois = poi::cluster_stay_points(stays, config.extraction.radius_m);
  const auto recovery =
      privacy::poi_recovery(reference.pois, pois, config.extraction.radius_m);
  std::cout << "PoIs recovered from the stolen stream: " << recovery.recovered_count
            << "/" << recovery.reference_count << " ("
            << util::format_percent(recovery.fraction(), 0) << ")\n";

  const auto observed =
      privacy::movement_histogram(pois, analyzer.grid());
  if (!observed.empty()) {
    const auto result = analyzer.adversary().identify(
        observed, privacy::Pattern::kMovements, config.match);
    if (result.matched.size() == 1 && result.matched.front() == victim) {
      std::cout << "identification: UNIQUE - the adversary knows this is user "
                << reference.user_id << " (Deg_anonymity "
                << util::format_fixed(result.degree_of_anonymity, 3) << ")\n";
    } else {
      std::cout << "identification: anonymity set of " << result.matched.size()
                << " profiles (Deg_anonymity "
                << util::format_fixed(result.degree_of_anonymity, 3) << ")\n";
    }
  } else {
    std::cout << "identification: too little data - no movement patterns formed\n";
  }
  return 0;
}
