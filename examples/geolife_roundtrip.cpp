// Geolife round trip: export the synthetic corpus in the exact Geolife .plt
// directory layout, read it back with the PLT parser, and verify the privacy
// pipeline produces identical results on the re-imported copy. Point this at
// a real Geolife download (pass its root) to run the pipeline on the actual
// dataset the paper used.
//
//   $ ./examples/geolife_roundtrip [geolife_root]
#include <filesystem>
#include <iostream>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "trace/geolife.hpp"
#include "trace/trace_stats.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace locpriv;
  namespace fs = std::filesystem;

  std::vector<trace::UserTrace> users;
  if (argc > 1) {
    std::cout << "Reading Geolife dataset from " << argv[1] << "...\n";
    users = trace::read_geolife_dataset(argv[1]);
  } else {
    std::cout << "No dataset path given; synthesising a corpus and round-"
                 "tripping it through the .plt format...\n";
    mobility::DatasetConfig dataset;
    dataset.user_count = 8;
    dataset.synthesis.days = 6;
    const auto synthetic = mobility::generate_dataset(dataset);

    const fs::path root = fs::temp_directory_path() / "locpriv_geolife_example";
    fs::remove_all(root);
    trace::write_geolife_dataset(root, synthetic.users);
    users = trace::read_geolife_dataset(root);
    std::cout << "wrote and re-read " << users.size() << " users under " << root
              << "\n";
    fs::remove_all(root);
  }

  const trace::DatasetStats stats = trace::compute_dataset_stats(users);
  std::cout << "\ndataset: " << stats.user_count << " users, "
            << stats.trajectory_count << " trajectories, " << stats.point_count
            << " fixes, " << util::format_fixed(stats.total_length_km, 0)
            << " km, high-frequency fraction "
            << util::format_percent(stats.high_frequency_fraction, 1) << "\n";

  const core::PrivacyAnalyzer analyzer(core::experiment_analyzer_config(),
                                       std::move(users));
  std::size_t pois = 0;
  for (std::size_t u = 0; u < analyzer.user_count(); ++u)
    pois += analyzer.reference(u).pois.size();
  std::cout << "reference PoIs extracted across all users: " << pois << "\n";

  const core::ExposureReport report = analyzer.evaluate_exposure(0, 60);
  std::cout << "a 60 s background app recovers "
            << util::format_percent(report.poi_total.fraction(), 1)
            << " of user 0's PoIs (His_bin "
            << (report.breach_detected() ? "ALERT" : "ok") << ")\n";
  return 0;
}
