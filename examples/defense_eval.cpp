// Defense evaluation: how much does releasing *coarsened* locations (the
// LP-Guardian / location-truncation countermeasure the paper cites) blunt a
// fast background app? Sweeps the snapping grid and reports PoI exposure
// and identification across all users.
//
//   $ ./examples/defense_eval [cell_m ...]    (default sweep 0..2000 m)
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "geo/projection.hpp"
#include "poi/clustering.hpp"
#include "privacy/detection.hpp"
#include "privacy/metrics.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace locpriv;

  std::vector<double> cells{0.0, 100.0, 250.0, 500.0, 1000.0, 2000.0};
  if (argc > 1) {
    cells.clear();
    for (int i = 1; i < argc; ++i) cells.push_back(std::atof(argv[i]));
  }

  mobility::DatasetConfig dataset;
  dataset.user_count = 24;
  dataset.synthesis.days = 8;
  const core::PrivacyAnalyzer analyzer =
      core::PrivacyAnalyzer::from_synthetic(core::experiment_analyzer_config(), dataset);
  const geo::LocalProjection projection(analyzer.grid().projection().origin());
  const double radius = analyzer.config().extraction.radius_m;

  std::cout << "Coarsening defense vs a 1 s background app, "
            << analyzer.user_count() << " users:\n\n";
  util::ConsoleTable table({"cell (m)", "PoI_total", "PoI_sensitive(<=3)",
                            "users identified (p2)", "mean Deg_anonymity"});
  for (const double cell : cells) {
    std::size_t reference_total = 0;
    std::size_t recovered_total = 0;
    std::size_t sensitive_reference = 0;
    std::size_t sensitive_recovered = 0;
    int identified = 0;
    double anonymity = 0.0;
    for (std::size_t u = 0; u < analyzer.user_count(); ++u) {
      const core::UserReference& reference = analyzer.reference(u);
      std::vector<trace::TracePoint> released = reference.points;
      if (cell > 0.0) {
        for (auto& point : released)
          point.position = geo::snap_to_grid(point.position, cell, projection);
      }
      const auto stays =
          poi::extract_stay_points(released, analyzer.config().extraction);
      const auto pois = poi::cluster_stay_points(stays, radius);
      const auto total = privacy::poi_recovery(reference.pois, pois, radius);
      const auto sensitive =
          privacy::sensitive_poi_recovery(reference.pois, pois, radius, 3);
      reference_total += total.reference_count;
      recovered_total += total.recovered_count;
      sensitive_reference += sensitive.reference_count;
      sensitive_recovered += sensitive.recovered_count;

      const auto observed = privacy::build_histogram(privacy::Pattern::kMovements,
                                                     pois, analyzer.grid());
      double degree = 1.0;
      if (!observed.empty()) {
        const auto result = analyzer.adversary().identify(
            observed, privacy::Pattern::kMovements, analyzer.config().match);
        degree = result.degree_of_anonymity;
        if (result.matched.size() == 1 && result.matched[0] == u) ++identified;
      }
      anonymity += degree;
    }
    table.add_row(
        {cell == 0.0 ? "off" : util::format_fixed(cell, 0),
         util::format_percent(static_cast<double>(recovered_total) /
                                  static_cast<double>(reference_total), 1),
         sensitive_reference == 0
             ? "-"
             : util::format_percent(static_cast<double>(sensitive_recovered) /
                                        static_cast<double>(sensitive_reference), 1),
         std::to_string(identified) + "/" + std::to_string(analyzer.user_count()),
         util::format_fixed(anonymity / static_cast<double>(analyzer.user_count()), 3)});
  }
  table.print(std::cout);
  return 0;
}
