// Quickstart: generate a small synthetic mobility corpus, build the
// PrivacyAnalyzer, and ask what a background app polling at various
// intervals learns about one user.
//
//   $ ./examples/quickstart [user_count] [days]
#include <cstdlib>
#include <iostream>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace locpriv;

  mobility::DatasetConfig dataset;
  dataset.user_count = argc > 1 ? std::atoi(argv[1]) : 12;
  dataset.synthesis.days = argc > 2 ? std::atoi(argv[2]) : 6;

  std::cout << "Generating " << dataset.user_count << " users x "
            << dataset.synthesis.days << " days (seed " << dataset.seed << ")...\n";
  const core::AnalyzerConfig config = core::experiment_analyzer_config();
  const core::PrivacyAnalyzer analyzer =
      core::PrivacyAnalyzer::from_synthetic(config, dataset);

  // Show the reference profile of user 0.
  const core::UserReference& reference = analyzer.reference(0);
  std::cout << "\nUser " << reference.user_id << ": " << reference.points.size()
            << " GPS fixes, " << reference.pois.size() << " reference PoIs, "
            << reference.movements.key_count() << " distinct movement patterns\n";

  // Sweep the access interval of a hypothetical background app.
  util::ConsoleTable table({"interval (s)", "fixes", "PoIs", "PoI_total", "PoI_sens",
                            "His_bin p1", "His_bin p2", "anonymity p2"});
  for (const std::int64_t interval : {1LL, 10LL, 60LL, 600LL, 3600LL, 7200LL}) {
    const core::ExposureReport report = analyzer.evaluate_exposure(0, interval);
    table.add_row({std::to_string(interval), std::to_string(report.collected_fixes),
                   std::to_string(report.extracted_pois),
                   util::format_percent(report.poi_total.fraction()),
                   util::format_percent(report.poi_sensitive.fraction()),
                   report.hisbin_visits ? "yes" : "no",
                   report.hisbin_movements ? "yes" : "no",
                   util::format_fixed(report.anonymity_movements, 3)});
  }
  std::cout << '\n';
  table.print(std::cout);

  // Earliest-detection comparison for the two patterns (Figure 4's per-user
  // question) on a 1 s app.
  const auto p1 = analyzer.earliest_detection(0, privacy::Pattern::kVisits, 1);
  const auto p2 = analyzer.earliest_detection(0, privacy::Pattern::kMovements, 1);
  std::cout << "\nEarliest His_bin detection for user 0 at 1 s polling:\n"
            << "  pattern 1 (visits):    "
            << (p1.detected ? util::format_percent(p1.fraction) + " of the trace"
                            : "never") << '\n'
            << "  pattern 2 (movements): "
            << (p2.detected ? util::format_percent(p2.fraction) + " of the trace"
                            : "never") << '\n';
  return 0;
}
