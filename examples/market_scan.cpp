// Market scan: the paper's Section III measurement campaign in miniature.
// Generates a small synthetic app corpus, drives each app through the
// launch / trigger / background / close script on the simulated device,
// and prints the dumpsys evidence for apps caught accessing location in
// background.
//
//   $ ./examples/market_scan [app_count]
#include <cstdlib>
#include <iostream>

#include "android/dumpsys.hpp"
#include "android/indicator.hpp"
#include "market/analysis.hpp"
#include "market/catalog.hpp"
#include "market/categories.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace locpriv;
  const std::size_t limit = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;

  market::CatalogConfig config;
  const market::Catalog catalog = market::generate_catalog(config);
  std::cout << "Scanning the first " << limit << " of " << catalog.size()
            << " apps (seed " << config.seed << ")...\n\n";

  market::DynamicTester tester(/*device_seed=*/42);
  util::ConsoleTable offenders({"package", "claims", "providers (bg)",
                                "interval", "auto-start"});
  int scanned = 0;
  int declaring = 0;
  int functional = 0;
  for (const market::AppSpec& app : catalog) {
    if (static_cast<std::size_t>(scanned) >= limit) break;
    ++scanned;
    const market::StaticFinding finding = market::analyze_manifest(app);
    if (!finding.declares_location) continue;
    ++declaring;
    const market::DynamicObservation observation = tester.test(app);
    if (observation.functions) ++functional;
    if (!observation.background_access) continue;
    offenders.add_row(
        {observation.package, finding.granularity_claim,
         android::provider_combo_label(observation.background_providers),
         std::to_string(observation.background_interval_s) + "s",
         observation.auto_start ? "yes" : "no"});
  }

  std::cout << "scanned " << scanned << " apps: " << declaring
            << " declare location, " << functional << " actually use it, "
            << offenders.row_count() << " keep accessing in background:\n\n";
  offenders.print(std::cout);

  std::cout << "\nWhat the analyst sees for one offender (dumpsys round trip):\n\n";
  for (const market::AppSpec& app : catalog) {
    if (!app.behavior.continues_in_background) continue;
    android::DeviceSimulator device(7, {39.9042, 116.4074});
    device.install(app.manifest, app.behavior);
    device.launch(app.package);
    if (!app.behavior.auto_start_on_launch) device.trigger_location_use(app.package);
    device.move_to_background(app.package);
    device.advance(5);
    std::cout << android::dumpsys_location_report(device.location_manager(),
                                                  device.now_s());
    break;
  }

  // Why the user never notices: a legitimate foreground navigator and a
  // background tracker share the status-bar indicator, and the user
  // attributes the icon to the app on screen (paper §III: "users may
  // mistake that the location access from a background app is from the
  // foreground app").
  std::cout << "\nIndicator attribution over a 10-minute session (foreground\n"
               "navigator + background tracker):\n\n";
  {
    android::DeviceSimulator device(9, {39.9042, 116.4074});
    android::AndroidManifest tracker;
    tracker.package_name = "com.tracker.bg";
    tracker.uses_permissions = {android::Permission::kAccessFineLocation};
    android::AppBehavior tracker_behavior;
    tracker_behavior.uses_location = true;
    tracker_behavior.auto_start_on_launch = true;
    tracker_behavior.continues_in_background = true;
    tracker_behavior.providers = {android::LocationProvider::kGps};
    tracker_behavior.request_interval_s = 15;
    device.install(tracker, tracker_behavior);

    android::AndroidManifest navigator;
    navigator.package_name = "com.maps.fg";
    navigator.uses_permissions = {android::Permission::kAccessFineLocation};
    android::AppBehavior navigator_behavior = tracker_behavior;
    navigator_behavior.continues_in_background = false;
    navigator_behavior.request_interval_s = 5;
    device.install(navigator, navigator_behavior);

    device.launch(tracker.package_name);
    device.launch(navigator.package_name);  // Tracker moves to background.
    device.advance(600);

    const auto spans =
        android::indicator_spans(device.location_manager().delivery_log());
    const auto attribution = android::attribute_indicator(spans);
    std::cout << "indicator lit " << attribution.lit_s << " s total; "
              << attribution.ambiguous_s
              << " s with both apps behind the same icon ("
              << util::format_percent(
                     static_cast<double>(attribution.ambiguous_s) /
                         static_cast<double>(attribution.lit_s),
                     0)
              << " of the lit time is unattributable by the user)\n";
  }
  return 0;
}
