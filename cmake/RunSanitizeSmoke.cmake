# Runs the tier-1 suite for the sanitize_smoke target. Invoked at build
# time (cmake -P), so the sanitizer runtime options are read from the
# *current* environment — CI exports TSAN_OPTIONS=halt_on_error=1 (or an
# ASAN_OPTIONS suppressions=... path) right on the ctest invocation, with no
# reconfigure. execute_process children inherit this environment; the echo
# below just makes the effective options visible in the build log.
foreach(option_var TSAN_OPTIONS ASAN_OPTIONS UBSAN_OPTIONS LSAN_OPTIONS)
  if(DEFINED ENV{${option_var}})
    message(STATUS "sanitize_smoke: ${option_var}=$ENV{${option_var}}")
  endif()
endforeach()

execute_process(
  COMMAND ${LOCPRIV_CTEST} --output-on-failure -j
  WORKING_DIRECTORY ${LOCPRIV_BINARY_DIR}
  RESULT_VARIABLE smoke_result)
if(NOT smoke_result EQUAL 0)
  message(FATAL_ERROR
    "sanitize_smoke: ctest failed (exit ${smoke_result}; sanitizers: "
    "${LOCPRIV_SANITIZE})")
endif()
