// Layer 1 of locpriv-lint v2: a line-attributed C++ tokenizer.
//
// The v1 scanner only blanked comments and literals and ran regexes over the
// remaining text; flow rules (EINTR retry loops, fd ownership, signal-handler
// reachability) need to know *which* identifier is a call, where a brace
// scope opens, and which line a token sits on. lex() produces:
//
//   - a token stream (identifiers, numbers, string/char literals incl. raw
//     strings, punctuation, whole preprocessor directives) where every token
//     carries the 1-based physical line it starts on, and
//   - the same comment/literal-blanked `code` and comment-only `comments`
//     buffers the v1 scanner produced, with line structure preserved, so the
//     v1 regex rules and the lint suppression-comment contract (see lint.hpp)
//     keep byte-identical behaviour.
//
// Deliberate shapes:
//   - Keywords lex as identifiers; rule layers treat `new`/`throw` by name.
//   - A preprocessor directive (including backslash-continued lines) becomes
//     ONE kPreproc token, so code stringified inside a macro body cannot
//     masquerade as live identifiers for the flow rules.
//   - String tokens keep their (raw, unescaped) source content in `text`;
//     the blanked `code` view still hides it from the regex rules.
//   - `::` and `->` are single punctuation tokens: qualification is
//     structural information the call-site layer depends on.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace locpriv::lint {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords
  kNumber,
  kString,     // "..." (text = raw content between the quotes)
  kRawString,  // R"delim(...)delim" (text = raw content)
  kChar,       // '...'
  kPunct,      // one operator; `::` `->` `<<` `>>` stay fused
  kPreproc,    // a whole preprocessor directive, continuations joined
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  std::size_t line = 0;  // 1-based line where the token starts.
};

struct LexedSource {
  std::vector<Token> tokens;
  std::string code;      // comment and literal contents blanked, lines kept.
  std::string comments;  // only comment text, lines kept.
};

/// Tokenizes one translation unit. Never throws on malformed input: an
/// unterminated literal or comment simply ends at EOF (the goal is lint
/// robustness, not diagnostics).
LexedSource lex(std::string_view text);

}  // namespace locpriv::lint
