// locpriv_lint CLI: scans the repo (or explicit paths) for invariant
// violations and prints stable file:line:rule findings.
//
//   locpriv_lint --root <repo>              # scan src bench tools examples tests
//   locpriv_lint file.cpp dir/              # scan explicit paths instead
//   locpriv_lint --format github            # emit ::error workflow commands
//   locpriv_lint --format json              # one machine-readable document
//   locpriv_lint --list-rules               # rule registry (honours --format json)
//   locpriv_lint --jobs 4 --verbose         # cap analysis threads, time the scan
//
// Tree scans run the cross-file rules (signal-safety, verb-exhaustive) over
// the whole collection; explicit-path mode lints each file in isolation.
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <iterator>
#include <stdexcept>
#include <vector>

#include "lint/lint.hpp"
#include "util/args.hpp"

namespace {

namespace fs = std::filesystem;
using locpriv::lint::Finding;

void collect_path(const fs::path& path, std::vector<fs::path>* files) {
  if (fs::is_directory(path)) {
    for (const auto& entry : fs::recursive_directory_iterator(path)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".cc") files->push_back(entry.path());
    }
    return;
  }
  if (!fs::exists(path))
    throw std::runtime_error("locpriv-lint: no such path: " + path.string());
  files->push_back(path);
}

}  // namespace

int main(int argc, char** argv) {
  locpriv::util::Args args;
  args.declare("--root", ".");
  args.declare("--format", "text");
  args.declare("--jobs", "0");
  args.declare_bool("--list-rules");
  args.declare_bool("--verbose");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "locpriv-lint: " << error.what() << '\n';
    return 2;
  }

  const std::string format = args.get("--format");
  if (format != "text" && format != "github" && format != "json") {
    std::cerr << "locpriv-lint: unknown --format '" << format
              << "' (expected text, github, or json)\n";
    return 2;
  }

  if (args.get_bool("--list-rules")) {
    if (format == "json") {
      std::cout << locpriv::lint::rules_json() << '\n';
    } else {
      for (const auto& rule : locpriv::lint::rules())
        std::cout << rule.name << "\n    " << rule.summary << "\n";
    }
    return 0;
  }

  const long long jobs = args.get_int("--jobs");
  if (jobs < 0) {
    std::cerr << "locpriv-lint: --jobs must be >= 0\n";
    return 2;
  }

  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  const auto start = std::chrono::steady_clock::now();
  try {
    if (args.positional().empty()) {
      findings = locpriv::lint::lint_tree(args.get("--root"), &files_scanned,
                                          static_cast<unsigned>(jobs));
    } else {
      std::vector<fs::path> files;
      for (const std::string& path : args.positional()) collect_path(path, &files);
      std::sort(files.begin(), files.end());
      files_scanned = files.size();
      for (const fs::path& file : files) {
        auto file_findings = locpriv::lint::lint_file(file, file.generic_string());
        findings.insert(findings.end(),
                        std::make_move_iterator(file_findings.begin()),
                        std::make_move_iterator(file_findings.end()));
      }
    }
  } catch (const std::exception& error) {
    std::cerr << error.what() << '\n';
    return 2;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::duration<double>>(
      std::chrono::steady_clock::now() - start);

  if (format == "json") {
    std::cout << locpriv::lint::format_json(findings, files_scanned) << '\n';
  } else {
    for (const Finding& finding : findings)
      std::cout << (format == "github" ? locpriv::lint::format_github(finding)
                                       : locpriv::lint::format_text(finding))
                << '\n';
  }
  std::cerr << "locpriv-lint: " << findings.size() << " finding(s) in "
            << files_scanned << " file(s)\n";
  if (args.get_bool("--verbose")) {
    const double seconds = elapsed.count();
    const double rate = seconds > 0.0 ? static_cast<double>(files_scanned) / seconds
                                      : 0.0;
    std::cerr << "locpriv-lint: scanned in " << seconds << " s ("
              << static_cast<long>(rate) << " files/s)\n";
  }
  return findings.empty() ? 0 : 1;
}
