#include "lint/lexer.hpp"

#include <cctype>

namespace locpriv::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool digit(char c) { return c >= '0' && c <= '9'; }

// Literal records produced by the blanking pass so the token pass can emit
// string/char tokens with their content without re-walking escapes.
struct LiteralSpan {
  std::size_t open = 0;   // offset of the opening quote in the buffer
  std::size_t close = 0;  // offset of the closing quote (== open if unterminated)
  std::size_t content_begin = 0;  // first byte of the literal's content
  std::size_t content_end = 0;    // one past the last content byte
  bool raw = false;
  bool is_char = false;
};

struct BlankedSource {
  std::string code;
  std::string comments;
  std::vector<LiteralSpan> literals;  // ordered by open offset
};

// The v1 split_views() state machine, verbatim in behaviour, plus literal
// span capture. Line structure is preserved in both views.
BlankedSource blank_views(std::string_view text) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  BlankedSource views;
  views.code.assign(text.size(), ' ');
  views.comments.assign(text.size(), ' ');
  State state = State::kCode;
  std::string raw_end;  // ")delim\"" terminator of the active raw string.
  std::size_t literal_open = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {  // Keep line structure in every view.
      views.code[i] = '\n';
      views.comments[i] = '\n';
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode: {
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;  // Skip the second slash (already blank in both views).
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"' && i > 0 && text[i - 1] == 'R') {
          // Raw string literal: R"delim( ... )delim". Scan the delimiter.
          std::size_t j = i + 1;
          std::string delim;
          while (j < text.size() && text[j] != '(' && delim.size() < 16)
            delim.push_back(text[j++]);
          raw_end = ")" + delim + "\"";
          state = State::kRawString;
          views.code[i] = '"';
          literal_open = i;
        } else if (c == '"') {
          state = State::kString;
          views.code[i] = '"';
          literal_open = i;
        } else if (c == '\'') {
          state = State::kChar;
          views.code[i] = '\'';
          literal_open = i;
        } else {
          views.code[i] = c;
        }
        break;
      }
      case State::kLineComment:
        views.comments[i] = c;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < text.size() && text[i + 1] == '/') {
          ++i;
        } else {
          views.comments[i] = c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // Skip the escaped character (stays blank).
        } else if (c == '"') {
          views.code[i] = '"';
          views.literals.push_back({literal_open, i, literal_open + 1, i, false, false});
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          views.code[i] = '\'';
          views.literals.push_back({literal_open, i, literal_open + 1, i, false, true});
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == ')' && text.compare(i, raw_end.size(), raw_end) == 0) {
          // Content sits between `R"delim(` and `)delim"`; raw_end is
          // `)delim"`, so the prefix `delim(` is raw_end.size()-1 bytes.
          const std::size_t content_begin = literal_open + raw_end.size();
          const std::size_t content_end = i;
          // Blank the terminator too, minus the closing quote we mirror.
          i += raw_end.size() - 1;
          if (i < text.size()) views.code[i] = '"';
          views.literals.push_back(
              {literal_open, i, content_begin, content_end, true, false});
          state = State::kCode;
        }
        break;
    }
  }
  return views;
}

}  // namespace

LexedSource lex(std::string_view text) {
  BlankedSource blanked = blank_views(text);
  LexedSource out;

  const std::string& code = blanked.code;
  std::size_t line = 1;
  std::size_t literal_cursor = 0;
  bool line_has_token = false;  // anything non-blank seen on this line yet?

  auto literal_at = [&](std::size_t offset) -> const LiteralSpan* {
    while (literal_cursor < blanked.literals.size() &&
           blanked.literals[literal_cursor].open < offset)
      ++literal_cursor;
    if (literal_cursor < blanked.literals.size() &&
        blanked.literals[literal_cursor].open == offset)
      return &blanked.literals[literal_cursor];
    return nullptr;
  };

  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      line_has_token = false;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Backslash-newline: a line continuation in plain code. The physical
    // line still advances; the logical token stream just flows on.
    if (c == '\\' && i + 1 < code.size() &&
        (code[i + 1] == '\n' ||
         (code[i + 1] == '\r' && i + 2 < code.size() && code[i + 2] == '\n'))) {
      i += code[i + 1] == '\n' ? 2 : 3;
      ++line;
      line_has_token = false;
      continue;
    }

    if (c == '#' && !line_has_token) {
      // Whole preprocessor directive as one token, backslash continuations
      // joined, so stringified code in a macro body never reaches the
      // identifier-level rules.
      const std::size_t start_line = line;
      std::string directive;
      while (i < code.size()) {
        const char d = code[i];
        if (d == '\n') {
          // Continued iff the last non-blank char on the line was '\'.
          std::size_t back = directive.find_last_not_of(" \t\r");
          if (back != std::string::npos && directive[back] == '\\') {
            directive.erase(back);  // join the continuation
            directive += ' ';
            ++line;
            ++i;
            continue;
          }
          break;
        }
        directive += d;
        ++i;
      }
      out.tokens.push_back({TokenKind::kPreproc, std::move(directive), start_line});
      line_has_token = true;
      continue;
    }

    line_has_token = true;

    if (c == '"' || c == '\'') {
      const LiteralSpan* span = literal_at(i);
      Token token;
      token.line = line;
      if (span != nullptr && span->close > span->open) {
        token.kind = span->is_char ? TokenKind::kChar
                     : span->raw  ? TokenKind::kRawString
                                  : TokenKind::kString;
        token.text.assign(
            text.substr(span->content_begin, span->content_end - span->content_begin));
        // Count the lines the literal spans (raw strings can be many).
        for (std::size_t b = span->open; b < span->close; ++b)
          if (text[b] == '\n') ++line;
        i = span->close + 1;
      } else {
        // Unterminated literal: consume to EOF.
        token.kind = c == '\'' ? TokenKind::kChar : TokenKind::kString;
        i = code.size();
      }
      out.tokens.push_back(std::move(token));
      continue;
    }

    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < code.size() && ident_char(code[j])) ++j;
      // An identifier directly glued to a raw-string quote is the R prefix;
      // emit it anyway (the string token follows) — rules don't care.
      out.tokens.push_back(
          {TokenKind::kIdentifier, std::string(code.substr(i, j - i)), line});
      i = j;
      continue;
    }

    if (digit(c) || (c == '.' && i + 1 < code.size() && digit(code[i + 1]))) {
      std::size_t j = i + 1;
      while (j < code.size()) {
        const char d = code[j];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') && j > i &&
                   (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                    code[j - 1] == 'p' || code[j - 1] == 'P')) {
          ++j;  // exponent sign
        } else {
          break;
        }
      }
      out.tokens.push_back(
          {TokenKind::kNumber, std::string(code.substr(i, j - i)), line});
      i = j;
      continue;
    }

    // Punctuation. Fuse the two-char operators the rule layers reason about
    // structurally; everything else is one char at a time.
    std::string punct(1, c);
    if (i + 1 < code.size()) {
      const char next = code[i + 1];
      if ((c == ':' && next == ':') || (c == '-' && next == '>') ||
          (c == '<' && next == '<') || (c == '>' && next == '>') ||
          (c == '&' && next == '&') || (c == '|' && next == '|') ||
          (c == '=' && next == '=') || (c == '!' && next == '=') ||
          (c == '<' && next == '=') || (c == '>' && next == '='))
        punct += next;
    }
    out.tokens.push_back({TokenKind::kPunct, punct, line});
    i += punct.size();
  }

  out.code = std::move(blanked.code);
  out.comments = std::move(blanked.comments);
  return out;
}

}  // namespace locpriv::lint
