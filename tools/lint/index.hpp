// Layer 2 of locpriv-lint v2: a lightweight semantic index per translation
// unit, plus the whole-tree call graph the cross-file rules query.
//
// This is a heuristic indexer, not a parser: it matches braces and parens,
// recognises `name(args...) ... {` definition headers (including qualified
// names and constructor init lists), classifies every `name(` as a call
// site with its qualification (none / `::global` / `Type::` / member), and
// tags loop scopes with their full extent (header condition through do-while
// trailer) so flow rules can ask "is this call retried inside a loop that
// mentions EINTR?". Misparses degrade to missed attribution — a rule that
// consults the index can produce a false negative, never a crash.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.hpp"

namespace locpriv::lint {

inline constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

/// How the name of a call site is qualified at the call.
enum class CallQual {
  kNone,    // f(...)
  kGlobal,  // ::f(...) — explicit global namespace (raw syscall idiom)
  kType,    // Ns::f(...) / Type::f(...)
  kMember,  // obj.f(...) / ptr->f(...)
};

struct CallSite {
  std::string name;            // simple (last) identifier of the callee
  std::size_t name_token = 0;  // token index of that identifier
  std::size_t line = 0;
  CallQual qual = CallQual::kNone;
  std::size_t lparen = 0;  // token index of '('
  std::size_t rparen = 0;  // token index of the matching ')'
};

struct Scope {
  std::size_t open = 0;           // token index of '{'
  std::size_t close = 0;          // token index of the matching '}'
  std::size_t parent = kNpos;     // enclosing scope, kNpos at top level
  bool is_loop = false;           // body of for/while/do
  std::size_t extent_lo = 0;      // loops: first header token (the keyword)
  std::size_t extent_hi = 0;      // loops: last token (do-while: the trailing cond)
};

struct FunctionDef {
  std::string name;       // simple name
  std::string qualified;  // "A::B::name" when the definition is qualified
  std::size_t name_token = 0;
  std::size_t line = 0;
  std::size_t body_open = 0;   // token index of '{'
  std::size_t body_close = 0;  // token index of '}'
};

struct FileIndex {
  std::string path;
  LexedSource src;
  std::vector<Scope> scopes;
  std::vector<FunctionDef> functions;
  std::vector<CallSite> calls;

  /// Innermost brace scope whose body contains `token`, kNpos if none.
  std::size_t innermost_scope(std::size_t token) const;

  /// The function whose body contains `token`, nullptr if none.
  const FunctionDef* enclosing_function(std::size_t token) const;

  /// Call sites whose body token range lies inside `fn`'s body.
  std::vector<const CallSite*> calls_in(const FunctionDef& fn) const;

  /// True when any enclosing loop's full extent (header + body + do-while
  /// trailer) contains a token for which `pred` holds.
  template <typename Pred>
  bool enclosing_loop_contains(std::size_t token, Pred pred) const {
    for (const Scope& scope : scopes) {
      if (!scope.is_loop) continue;
      if (token < scope.extent_lo || token > scope.extent_hi) continue;
      for (std::size_t i = scope.extent_lo; i <= scope.extent_hi; ++i)
        if (pred(src.tokens[i])) return true;
    }
    return false;
  }

  /// True when `token` sits inside at least one loop extent.
  bool inside_loop(std::size_t token) const;
};

/// Builds the index for one translation unit.
FileIndex build_index(std::string path, std::string_view content);

/// Splits the argument tokens of a call into top-level (depth-0) argument
/// token ranges [begin, end) — token indices into the file's stream.
std::vector<std::pair<std::size_t, std::size_t>> split_arguments(
    const FileIndex& file, const CallSite& call);

}  // namespace locpriv::lint
