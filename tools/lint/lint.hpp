// locpriv-lint v2: machine-checks the repo invariants that PRs 1-7
// established by convention. The engine is three layers (see docs/lint.md):
// a C++ tokenizer (lexer.hpp), a per-file semantic index of functions /
// call sites / scopes with a whole-tree call graph (index.hpp), and the
// rules below. Rules are scoped to C++ sources under src/ bench/ tools/
// examples/ tests/ (fixtures under tests/lint_fixtures/ are excluded from
// tree scans).
//
// Line rules (v1, re-hosted on the lexer's blanked views):
//
//   raw-write           artifact writes must flow through the harness atomic
//                       writer (src/core/harness/ itself is exempt).
//   nondet-rng          library randomness must derive from a seeded
//                       stats::Rng; std::rand / srand / std::random_device /
//                       time(nullptr) break resume byte-identity.
//   unordered-serialize unordered containers in a file that also serializes
//                       output: iteration order is nondeterministic.
//   swallowed-catch     `catch (...)` whose handler neither rethrows, stores
//                       std::current_exception, nor aborts.
//   exit-call           exit() outside a file that defines main().
//   raw-process         direct fork/exec*/waitpid/kill outside
//                       src/core/harness/ and src/service/.
//   unbounded-growth    push/emplace onto long-lived member state with no
//                       cap or trim in sight (service + harness dirs only).
//
// Flow rules (v2, on the semantic index):
//
//   eintr-retry         raw poll/read/write/waitpid whose result is not
//                       re-checked inside a loop mentioning EINTR.
//   fd-guard            function-local open/pipe/dup/socket fds neither
//                       closed nor handed to an owner before scope exit.
//   blocking-under-lock blocking syscalls while a util::MutexLock is live
//                       in the enclosing scope.
//   seq-narrowing       32-bit types or casts applied to *_seq / *_bytes
//                       counters under src/service/.
//
// Cross-file rules (v2, on the whole-tree index; active in tree scans):
//
//   signal-safety       functions reachable from handlers registered via
//                       sigaction/std::signal that use non-async-signal-safe
//                       facilities (allocation, logging, iostreams, locks).
//   verb-exhaustive     every wire verb in src/service/wire.hpp must be
//                       decoded by its peer (kCmd* in shard_child.cpp,
//                       kRsp* in locprivd.cpp), every ledger record kind
//                       written must be parsed back by replay(), and the
//                       ErrorCode taxonomy must match the README exit-code
//                       table.
//
// Escape hatch: a comment of the form `locpriv-lint: allow(raw-write)` —
// one or more comma-separated rule names — suppresses those rules on its
// own line and the following line. A rule name the checker does not know is
// itself reported (rule "bad-suppression"), so a typo cannot silently
// disable checking. Live-tree suppressions must carry a justification in
// the same comment.
//
// Findings are file:line:rule triples with stable ordering, so CI diffs and
// GitHub annotations stay reproducible.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace locpriv::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based.
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};

/// The suppressible rules, sorted by name.
const std::vector<RuleInfo>& rules();

/// True when `name` names a suppressible rule.
bool is_known_rule(std::string_view name);

/// Lints one translation unit held in memory. `path` labels the findings
/// and drives path-scoped exemptions (raw writes are legal under
/// src/core/harness/; seq-narrowing only patrols src/service/);
/// content-scoped exemptions (exit() in a main() file) come from `content`
/// itself. The single-file call also runs signal-safety over the one file;
/// verb-exhaustive needs a tree scan. Findings are sorted by (line, rule).
std::vector<Finding> lint_source(std::string_view path, std::string_view content);

/// Reads and lints one file; `label` (usually the repo-relative path) is
/// used for findings and exemptions. Throws std::runtime_error when the
/// file cannot be read.
std::vector<Finding> lint_file(const std::filesystem::path& file,
                               const std::string& label);

/// Walks the checked directories (src bench tools examples tests) under
/// `root` for .cpp/.hpp sources, lints each (files analyzed in parallel via
/// util::parallel_for with a deterministic index-ordered merge), then runs
/// the cross-file rules over the whole collection. Paths containing a
/// `lint_fixtures` component relative to `root` are skipped, so the fixture
/// mini-trees never leak into the live scan while `lint_tree` can still be
/// pointed AT a fixture mini-tree by the self-tests. Findings are sorted by
/// (file, line, rule); `files_scanned`, when non-null, receives the number
/// of sources visited. `max_threads` caps the analysis workers
/// (0 = hardware concurrency).
std::vector<Finding> lint_tree(const std::filesystem::path& root,
                               std::size_t* files_scanned = nullptr,
                               unsigned max_threads = 0);

/// "file:line: [rule] message" — the stable text format.
std::string format_text(const Finding& finding);

/// GitHub Actions workflow-command format (one `::error` annotation).
std::string format_github(const Finding& finding);

/// The whole report as one JSON document:
/// {"files_scanned":N,"findings":[{"file":...,"line":N,"rule":...,
/// "message":...}, ...]} — findings in the same stable order as the text
/// format.
std::string format_json(const std::vector<Finding>& findings,
                        std::size_t files_scanned);

/// The rule registry as a JSON array of {"name":...,"summary":...}.
std::string rules_json();

}  // namespace locpriv::lint
