// locpriv-lint: machine-checks the repo invariants that PRs 1-2 established
// by convention. Rules (all scoped to C++ sources under src/ bench/ tools/
// examples/ tests/):
//
//   raw-write           artifact writes must flow through the harness atomic
//                       writer (src/core/harness/ itself is exempt — it is
//                       the implementation).
//   nondet-rng          library randomness must derive from a seeded
//                       stats::Rng; std::rand / srand / std::random_device /
//                       time(nullptr) break resume byte-identity.
//   unordered-serialize unordered containers in a file that also serializes
//                       output: iteration order is nondeterministic, so the
//                       artifact bytes can vary run to run.
//   swallowed-catch     `catch (...)` whose handler neither rethrows, stores
//                       std::current_exception, nor aborts.
//   exit-call           exit() outside a file that defines main() skips
//                       destructors and the locpriv::Error exit-code
//                       taxonomy.
//   raw-process         direct fork/exec*/waitpid/kill outside
//                       src/core/harness/: process lifecycle belongs to
//                       harness::Supervisor (rlimits, reaping, graceful
//                       shutdown). Member calls and class-qualified names
//                       that share a POSIX spelling (rng.fork(), Rng::fork)
//                       are not flagged.
//
// Escape hatch: a comment of the form `locpriv-lint: allow(raw-write)` —
// one or more comma-separated rule names — suppresses those rules on its
// own line and the following line. A rule name the checker does not know is
// itself reported (rule "bad-suppression"), so a typo cannot silently
// disable checking.
//
// Findings are file:line:rule triples with stable ordering, so CI diffs and
// GitHub annotations stay reproducible.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace locpriv::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based.
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};

/// The suppressible rules, sorted by name.
const std::vector<RuleInfo>& rules();

/// True when `name` names a suppressible rule.
bool is_known_rule(std::string_view name);

/// Lints one translation unit held in memory. `path` labels the findings
/// and drives path-scoped exemptions (raw writes are legal under
/// src/core/harness/); content-scoped exemptions (exit() in a main() file)
/// come from `content` itself. Findings are sorted by (line, rule).
std::vector<Finding> lint_source(std::string_view path, std::string_view content);

/// Reads and lints one file; `label` (usually the repo-relative path) is
/// used for findings and exemptions. Throws std::runtime_error when the
/// file cannot be read.
std::vector<Finding> lint_file(const std::filesystem::path& file,
                               const std::string& label);

/// Walks the checked directories (src bench tools examples tests) under
/// `root` for .cpp/.hpp sources and lints each. `.cc` is deliberately not
/// picked up: the lint-test fixtures under tests/lint_fixtures/ use that
/// extension so the live-tree scan stays clean while the fixtures still get
/// linted explicitly by the self-tests. Findings are sorted by
/// (file, line, rule); `files_scanned`, when non-null, receives the number
/// of sources visited.
std::vector<Finding> lint_tree(const std::filesystem::path& root,
                               std::size_t* files_scanned = nullptr);

/// "file:line: [rule] message" — the stable text format.
std::string format_text(const Finding& finding);

/// GitHub Actions workflow-command format (one `::error` annotation).
std::string format_github(const Finding& finding);

}  // namespace locpriv::lint
