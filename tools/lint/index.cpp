#include "lint/index.hpp"

#include <algorithm>
#include <array>

namespace locpriv::lint {

namespace {

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool is_ident(const Token& t) { return t.kind == TokenKind::kIdentifier; }

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

// Keywords that look like `name(` but never are calls or definitions.
bool is_control_keyword(std::string_view name) {
  static constexpr std::array<std::string_view, 18> kKeywords = {
      "if",       "for",      "while",   "switch",        "catch",
      "return",   "sizeof",   "alignof", "alignas",       "decltype",
      "noexcept", "operator", "throw",   "static_assert", "do",
      "else",     "new",      "delete"};
  return std::find(kKeywords.begin(), kKeywords.end(), name) != kKeywords.end();
}

// Matches every '(' to its ')' and '{' to its '}' by token index. Unmatched
// tokens map to kNpos.
struct PairMaps {
  std::vector<std::size_t> match;  // per-token partner index or kNpos
};

PairMaps match_pairs(const std::vector<Token>& tokens) {
  PairMaps maps;
  maps.match.assign(tokens.size(), kNpos);
  std::vector<std::size_t> parens;
  std::vector<std::size_t> braces;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == "(") {
      parens.push_back(i);
    } else if (t.text == ")") {
      if (!parens.empty()) {
        maps.match[parens.back()] = i;
        maps.match[i] = parens.back();
        parens.pop_back();
      }
    } else if (t.text == "{") {
      braces.push_back(i);
    } else if (t.text == "}") {
      if (!braces.empty()) {
        maps.match[braces.back()] = i;
        maps.match[i] = braces.back();
        braces.pop_back();
      }
    }
  }
  return maps;
}

// Classifies the brace at `open` as a loop body and returns the extent of
// the whole statement when it is one.
void classify_loop(const std::vector<Token>& tokens, const PairMaps& pairs,
                   Scope& scope) {
  const std::size_t open = scope.open;
  scope.extent_lo = open;
  scope.extent_hi = scope.close;
  if (open == 0) return;
  const Token& prev = tokens[open - 1];
  if (is_punct(prev, ")")) {
    const std::size_t lparen = pairs.match[open - 1];
    if (lparen == kNpos || lparen == 0) return;
    const Token& keyword = tokens[lparen - 1];
    if (is_ident(keyword, "for") || is_ident(keyword, "while")) {
      scope.is_loop = true;
      scope.extent_lo = lparen - 1;  // header keyword through body close
    }
  } else if (is_ident(prev, "do")) {
    scope.is_loop = true;
    scope.extent_lo = open - 1;
    // Extend through the trailing `while ( ... )` so retry conditions in
    // the do-while condition count as "inside the loop".
    std::size_t i = scope.close + 1;
    if (i < tokens.size() && is_ident(tokens[i], "while") && i + 1 < tokens.size() &&
        is_punct(tokens[i + 1], "(")) {
      const std::size_t rparen = pairs.match[i + 1];
      if (rparen != kNpos) scope.extent_hi = rparen;
    }
  }
}

// Walks a definition-candidate's trailer — the tokens between the parameter
// list's ')' and a possible body '{'. Returns the body '{' index, or kNpos
// when the construct is not a definition (declaration, initializer, ...).
std::size_t find_body(const std::vector<Token>& tokens, const PairMaps& pairs,
                      std::size_t rparen) {
  std::size_t i = rparen + 1;
  std::size_t steps = 0;
  bool after_colon = false;  // inside a constructor init list
  while (i < tokens.size() && ++steps < 256) {
    const Token& t = tokens[i];
    if (t.kind == TokenKind::kPreproc) return kNpos;
    if (is_punct(t, "{")) {
      if (!after_colon) return i;
      // Brace-init of an init-list member (`: m{0}`): skip it and go on.
      const std::size_t close = pairs.match[i];
      if (close == kNpos) return kNpos;
      i = close + 1;
      continue;
    }
    if (is_punct(t, ";") || is_punct(t, "=")) return kNpos;
    if (is_punct(t, "(")) {  // init-list member or noexcept(...) — skip
      const std::size_t close = pairs.match[i];
      if (close == kNpos) return kNpos;
      i = close + 1;
      continue;
    }
    if (is_punct(t, ":")) {
      after_colon = true;
      ++i;
      continue;
    }
    if (is_punct(t, ",")) {
      // Between init-list members the next `{` is a member brace-init, but
      // after the LAST member the `{` is the body. We cannot tell without
      // full parsing; treat a `,` as staying in the init list.
      ++i;
      continue;
    }
    if (is_ident(t) || t.kind == TokenKind::kNumber ||
        t.kind == TokenKind::kString || is_punct(t, "::") || is_punct(t, "->") ||
        is_punct(t, "&") || is_punct(t, "&&") || is_punct(t, "*") ||
        is_punct(t, "<") || is_punct(t, ">") || is_punct(t, ">>") ||
        is_punct(t, "[") || is_punct(t, "]")) {
      ++i;
      continue;
    }
    return kNpos;  // anything else: not a definition header
  }
  return kNpos;
}

}  // namespace

std::size_t FileIndex::innermost_scope(std::size_t token) const {
  std::size_t best = kNpos;
  std::size_t best_span = kNpos;
  for (std::size_t s = 0; s < scopes.size(); ++s) {
    const Scope& scope = scopes[s];
    if (token <= scope.open || token >= scope.close) continue;
    const std::size_t span = scope.close - scope.open;
    if (span < best_span) {
      best = s;
      best_span = span;
    }
  }
  return best;
}

const FunctionDef* FileIndex::enclosing_function(std::size_t token) const {
  const FunctionDef* best = nullptr;
  std::size_t best_span = kNpos;
  for (const FunctionDef& fn : functions) {
    if (token < fn.body_open || token > fn.body_close) continue;
    const std::size_t span = fn.body_close - fn.body_open;
    if (span < best_span) {
      best = &fn;
      best_span = span;
    }
  }
  return best;
}

std::vector<const CallSite*> FileIndex::calls_in(const FunctionDef& fn) const {
  std::vector<const CallSite*> result;
  for (const CallSite& call : calls)
    if (call.name_token > fn.body_open && call.name_token < fn.body_close)
      result.push_back(&call);
  return result;
}

bool FileIndex::inside_loop(std::size_t token) const {
  for (const Scope& scope : scopes)
    if (scope.is_loop && token >= scope.extent_lo && token <= scope.extent_hi)
      return true;
  return false;
}

FileIndex build_index(std::string path, std::string_view content) {
  FileIndex file;
  file.path = std::move(path);
  file.src = lex(content);
  const std::vector<Token>& tokens = file.src.tokens;
  const PairMaps pairs = match_pairs(tokens);

  // Brace scopes with parent links and loop classification.
  {
    std::vector<std::size_t> stack;  // scope indices
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (!is_punct(tokens[i], "{")) continue;
      const std::size_t close = pairs.match[i];
      if (close == kNpos) continue;
      Scope scope;
      scope.open = i;
      scope.close = close;
      while (!stack.empty() && file.scopes[stack.back()].close < i) stack.pop_back();
      scope.parent = stack.empty() ? kNpos : stack.back();
      classify_loop(tokens, pairs, scope);
      file.scopes.push_back(scope);
      stack.push_back(file.scopes.size() - 1);
    }
  }

  // Function definitions: `name(params) trailer {` outside any already
  // recorded body. Bodies never interleave, so one high-water mark is
  // enough to skip nested candidates (lambdas, local helpers).
  std::size_t body_end = 0;  // token index just past the last recorded body
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (i < body_end) continue;
    const Token& t = tokens[i];
    if (!is_ident(t) || is_control_keyword(t.text)) continue;
    if (!is_punct(tokens[i + 1], "(")) continue;
    if (i > 0 && (is_punct(tokens[i - 1], ".") || is_punct(tokens[i - 1], "->")))
      continue;
    const std::size_t rparen = pairs.match[i + 1];
    if (rparen == kNpos) continue;
    const std::size_t body = find_body(tokens, pairs, rparen);
    if (body == kNpos) continue;
    const std::size_t close = pairs.match[body];
    if (close == kNpos) continue;
    FunctionDef fn;
    fn.name = t.text;
    fn.name_token = i;
    fn.line = t.line;
    fn.body_open = body;
    fn.body_close = close;
    // Collect `A::B::name` qualification backwards.
    std::string qualified = fn.name;
    std::size_t back = i;
    while (back >= 2 && is_punct(tokens[back - 1], "::") && is_ident(tokens[back - 2])) {
      qualified = tokens[back - 2].text + "::" + qualified;
      back -= 2;
    }
    fn.qualified = std::move(qualified);
    file.functions.push_back(std::move(fn));
    body_end = close + 1;
  }

  // Call sites: every `name(` that is not a definition header name.
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (!is_ident(t) || is_control_keyword(t.text)) continue;
    if (!is_punct(tokens[i + 1], "(")) continue;
    bool is_def_name = false;
    for (const FunctionDef& fn : file.functions)
      if (fn.name_token == i) {
        is_def_name = true;
        break;
      }
    if (is_def_name) continue;
    const std::size_t rparen = pairs.match[i + 1];
    if (rparen == kNpos) continue;
    CallSite call;
    call.name = t.text;
    call.name_token = i;
    call.line = t.line;
    call.lparen = i + 1;
    call.rparen = rparen;
    call.qual = CallQual::kNone;
    if (i > 0) {
      const Token& prev = tokens[i - 1];
      if (is_punct(prev, ".") || is_punct(prev, "->")) {
        call.qual = CallQual::kMember;
      } else if (is_punct(prev, "::")) {
        // `Ns::f(` is type-qualified; `::f(` is the global-namespace syscall
        // idiom. A keyword before the `::` (`return ::read(...)`) is not a
        // qualifier.
        call.qual = (i >= 2 && is_ident(tokens[i - 2]) &&
                     !is_control_keyword(tokens[i - 2].text))
                        ? CallQual::kType
                        : CallQual::kGlobal;
      }
    }
    file.calls.push_back(std::move(call));
  }

  return file;
}

std::vector<std::pair<std::size_t, std::size_t>> split_arguments(
    const FileIndex& file, const CallSite& call) {
  std::vector<std::pair<std::size_t, std::size_t>> args;
  const std::vector<Token>& tokens = file.src.tokens;
  std::size_t begin = call.lparen + 1;
  if (begin >= call.rparen) return args;
  int depth = 0;
  for (std::size_t i = begin; i < call.rparen; ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
    else if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
    else if (t.text == "," && depth == 0) {
      args.emplace_back(begin, i);
      begin = i + 1;
    }
  }
  args.emplace_back(begin, call.rparen);
  return args;
}

}  // namespace locpriv::lint
