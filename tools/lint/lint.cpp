#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iterator>
#include <map>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace locpriv::lint {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Source preprocessing. Rules must not fire on prose: a design comment that
// mentions std::ofstream, or a log string containing "exit(", is not a
// violation. split_views() produces two same-shape buffers — `code` with
// comment and literal contents blanked, `comments` with everything except
// comment text blanked — so rule regexes run on the former and suppression
// extraction on the latter, with line numbers preserved in both.
// ---------------------------------------------------------------------------

struct SourceViews {
  std::string code;
  std::string comments;
};

SourceViews split_views(std::string_view text) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  SourceViews views;
  views.code.assign(text.size(), ' ');
  views.comments.assign(text.size(), ' ');
  State state = State::kCode;
  std::string raw_end;  // ")delim\"" terminator of the active raw string.
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {  // Keep line structure in every view.
      views.code[i] = '\n';
      views.comments[i] = '\n';
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode: {
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;  // Skip the second slash (already blank in both views).
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"' && i > 0 && text[i - 1] == 'R') {
          // Raw string literal: R"delim( ... )delim". Scan the delimiter.
          std::size_t j = i + 1;
          std::string delim;
          while (j < text.size() && text[j] != '(' && delim.size() < 16)
            delim.push_back(text[j++]);
          raw_end = ")" + delim + "\"";
          state = State::kRawString;
          views.code[i] = '"';
        } else if (c == '"') {
          state = State::kString;
          views.code[i] = '"';
        } else if (c == '\'') {
          state = State::kChar;
          views.code[i] = '\'';
        } else {
          views.code[i] = c;
        }
        break;
      }
      case State::kLineComment:
        views.comments[i] = c;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < text.size() && text[i + 1] == '/') {
          ++i;
        } else {
          views.comments[i] = c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // Skip the escaped character (stays blank).
        } else if (c == '"') {
          views.code[i] = '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          views.code[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == ')' && text.compare(i, raw_end.size(), raw_end) == 0) {
          // Blank the terminator too, minus the closing quote we mirror.
          i += raw_end.size() - 1;
          if (i < text.size()) views.code[i] = '"';
          state = State::kCode;
        }
        break;
    }
  }
  return views;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type begin = 0;
  while (begin <= text.size()) {
    const auto end = text.find('\n', begin);
    if (end == std::string::npos) {
      lines.push_back(text.substr(begin));
      break;
    }
    lines.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

constexpr std::string_view kRawWrite = "raw-write";
constexpr std::string_view kNondetRng = "nondet-rng";
constexpr std::string_view kUnorderedSerialize = "unordered-serialize";
constexpr std::string_view kSwallowedCatch = "swallowed-catch";
constexpr std::string_view kExitCall = "exit-call";
constexpr std::string_view kRawProcess = "raw-process";
constexpr std::string_view kUnboundedGrowth = "unbounded-growth";
constexpr std::string_view kBadSuppression = "bad-suppression";

const std::regex& raw_write_re() {
  static const std::regex re(
      R"re(\bstd::ofstream\b|\bfopen\s*\(|\bfreopen\s*\(|\bstd::rename\s*\(|\bstd::filesystem::rename\s*\(|\bfs::rename\s*\()re");
  return re;
}

const std::regex& nondet_rng_re() {
  static const std::regex re(
      R"re(\bstd::rand\b|\brand\s*\(\s*\)|\bsrand\s*\(|\brandom_device\b|\btime\s*\(\s*(nullptr|NULL|0)\s*\))re");
  return re;
}

const std::regex& unordered_re() {
  static const std::regex re(R"re(\bstd::unordered_(map|set|multimap|multiset)\b)re");
  return re;
}

// Tokens that mean "this file produces serialized artifacts": the util
// writers, the bench export helpers, and the harness publish entry points.
const std::regex& serialize_sink_re() {
  static const std::regex re(
      R"re(\b(JsonWriter|CsvWriter|SeriesCsv|export_table|write_file_atomic|AtomicFileWriter|write_plt|csv_escape|json_escape)\b)re");
  return re;
}

const std::regex& exit_call_re() {
  static const std::regex re(R"re(\bexit\s*\(|\bquick_exit\s*\(|\b_Exit\s*\()re");
  return re;
}

// Raw process-lifecycle primitives. The supervisor owns fork/kill/waitpid
// (child cleanup, rlimits, SIGTERM escalation, quarantine bookkeeping);
// scattered direct calls would leak children past graceful shutdown.
const std::regex& raw_process_re() {
  static const std::regex re(
      R"re(\b(fork|vfork|execl|execle|execlp|execv|execve|execvp|fexecve|posix_spawnp?|waitpid|kill)\s*\()re");
  return re;
}

// True when the name at `pos` is a C++ member or class-qualified call that
// merely shares a POSIX spelling — `rng.fork()`, `child->kill()`,
// `Rng::fork(` — as opposed to the real syscall wrapper. A global-namespace
// qualifier (`::fork(`) is still the syscall.
bool member_or_class_qualified(const std::string& code, std::size_t pos) {
  if (pos >= 1 && code[pos - 1] == '.') return true;
  if (pos >= 2 && code[pos - 2] == '-' && code[pos - 1] == '>') return true;
  if (pos >= 2 && code[pos - 2] == ':' && code[pos - 1] == ':' && pos >= 3) {
    const char before = code[pos - 3];
    return std::isalnum(static_cast<unsigned char>(before)) != 0 || before == '_';
  }
  return false;
}

const std::regex& main_definition_re() {
  static const std::regex re(R"re(\bint\s+main\s*\()re");
  return re;
}

const std::regex& catch_all_re() {
  static const std::regex re(R"re(catch\s*\(\s*\.\.\.\s*\))re");
  return re;
}

// A catch-all handler is fine when it forwards the exception somewhere:
// rethrow, capture via current_exception, or a deliberate hard stop.
const std::regex& handler_forwards_re() {
  static const std::regex re(
      R"re(\bthrow\b|\bcurrent_exception\b|\brethrow_exception\b|\babort\s*\()re");
  return re;
}

// Growth calls whose receiver is a member-access chain. Capture 1 is the
// chain ("shard.retained." / "stats_."), capture 2 the growth verb.
const std::regex& growth_call_re() {
  static const std::regex re(
      R"re(((?:[A-Za-z_]\w*(?:\.|->))+)(push_back|emplace_back|push_front|emplace_front)\s*\()re");
  return re;
}

// Evidence nearby code bounds the container: any explicit trim/reset call.
const std::regex& trim_token_re() {
  static const std::regex re(
      R"re(\b(pop_front|pop_back|erase|resize|clear|shrink_to_fit)\s*\()re");
  return re;
}

// Long-lived state heuristic: a chained receiver (`shard.retained`) or any
// component with the trailing-underscore member convention (`stats_`).
// Plain locals (`fields.push_back`) pass — the rule targets containers that
// outlive one call, where growth without a cap is a slow memory leak in an
// always-on service.
bool member_like_receiver(std::string chain) {
  std::string::size_type arrow;
  while ((arrow = chain.find("->")) != std::string::npos)
    chain.replace(arrow, 2, ".");
  std::size_t components = 0;
  std::stringstream parts(chain);
  std::string part;
  bool member_named = false;
  while (std::getline(parts, part, '.')) {
    if (part.empty()) continue;
    ++components;
    if (part.back() == '_') member_named = true;
  }
  return components >= 2 || member_named;
}

// The unbounded-growth rule only patrols the always-on daemon and the
// long-running sweep supervisor — the places where a slowly growing
// container is a production memory leak rather than a transient buffer.
bool is_longlived_state_path(std::string_view path) {
  const std::string p(path);
  return p.find("src/service/") != std::string::npos ||
         p.find("src/core/harness/") != std::string::npos;
}

const std::regex& suppression_re() {
  static const std::regex re(R"re(locpriv-lint:\s*allow\(([^)]*)\))re");
  return re;
}

bool is_harness_path(std::string_view path) {
  return std::string(path).find("src/core/harness/") != std::string::npos;
}

// The raw-process rule alone is also waived under src/service/: locprivd IS
// a process supervisor (fork/kill/waitpid are its job, with the same
// reap-and-escalate discipline as the harness). Everything else — atomic
// writes, deterministic RNG, ordered serialization — still applies there.
bool may_own_processes(std::string_view path) {
  return is_harness_path(path) ||
         std::string(path).find("src/service/") != std::string::npos;
}

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t");
  return text.substr(begin, end - begin + 1);
}

struct Suppressions {
  // line (1-based) -> rules allowed on that line and the following one.
  std::map<std::size_t, std::vector<std::string>> allowed;
  std::vector<Finding> errors;  // bad-suppression findings.

  bool covers(std::size_t line, std::string_view rule) const {
    for (const std::size_t at : {line, line - 1}) {
      const auto it = allowed.find(at);
      if (it == allowed.end()) continue;
      for (const std::string& name : it->second)
        if (name == rule) return true;
    }
    return false;
  }
};

Suppressions collect_suppressions(const std::string& path,
                                  const std::vector<std::string>& comment_lines) {
  Suppressions result;
  for (std::size_t i = 0; i < comment_lines.size(); ++i) {
    const std::size_t line = i + 1;
    auto begin = std::sregex_iterator(comment_lines[i].begin(), comment_lines[i].end(),
                                      suppression_re());
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      std::stringstream names((*it)[1].str());
      std::string name;
      bool any = false;
      while (std::getline(names, name, ',')) {
        name = trim(name);
        if (name.empty()) continue;
        any = true;
        if (is_known_rule(name)) {
          result.allowed[line].push_back(name);
        } else {
          result.errors.push_back(
              {path, line, std::string(kBadSuppression),
               "unknown rule '" + name + "' in locpriv-lint suppression"});
        }
      }
      if (!any)
        result.errors.push_back({path, line, std::string(kBadSuppression),
                                 "empty locpriv-lint suppression"});
    }
  }
  return result;
}

// Finds the extent of the {...} block following `from` in `code`; returns
// the block's contents, or empty when no block opens (e.g. macro trickery —
// then the conservative answer is "does not forward").
std::string catch_block(const std::string& code, std::size_t from) {
  const auto open = code.find('{', from);
  if (open == std::string::npos) return "";
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '{') ++depth;
    if (code[i] == '}' && --depth == 0) return code.substr(open + 1, i - open - 1);
  }
  return code.substr(open + 1);
}

std::size_t line_of_offset(const std::vector<std::size_t>& line_starts,
                           std::size_t offset) {
  const auto it =
      std::upper_bound(line_starts.begin(), line_starts.end(), offset);
  return static_cast<std::size_t>(it - line_starts.begin());
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {kExitCall,
       "exit()/quick_exit()/_Exit() outside a file that defines main(); throw "
       "locpriv::Error so destructors run and the exit-code taxonomy applies"},
      {kNondetRng,
       "std::rand/srand/random_device/time(nullptr): nondeterministic source "
       "breaks resume byte-identity; derive randomness from a seeded stats::Rng"},
      {kRawProcess,
       "direct fork/exec/waitpid/kill outside src/core/harness/ or "
       "src/service/; process lifecycle belongs to harness::Supervisor or "
       "service::LocprivService (rlimits, reaping, graceful shutdown)"},
      {kRawWrite,
       "raw std::ofstream/fopen/rename artifact write outside src/core/harness/; "
       "route artifacts through AtomicFileWriter (torn-write invariant)"},
      {kSwallowedCatch,
       "catch (...) that neither rethrows, stores current_exception, nor aborts "
       "— concurrent failures must never be silently dropped"},
      {kUnboundedGrowth,
       "push/emplace onto long-lived state under src/service/ or "
       "src/core/harness/ with no cap or trim in sight; an always-on daemon "
       "must bound every container (window, watermark, or rolling cap)"},
      {kUnorderedSerialize,
       "std::unordered_{map,set} in a file that serializes output; iteration "
       "order is nondeterministic, so artifact bytes can vary run to run"},
  };
  return kRules;
}

bool is_known_rule(std::string_view name) {
  for (const RuleInfo& rule : rules())
    if (rule.name == name) return true;
  return false;
}

std::vector<Finding> lint_source(std::string_view path, std::string_view content) {
  const SourceViews views = split_views(content);
  const std::vector<std::string> code_lines = split_lines(views.code);
  const std::vector<std::string> comment_lines = split_lines(views.comments);
  const std::string label(path);

  Suppressions suppressions = collect_suppressions(label, comment_lines);
  std::vector<Finding> findings = std::move(suppressions.errors);

  const bool harness_file = is_harness_path(path);
  const bool process_owner_file = may_own_processes(path);
  const bool longlived_file = is_longlived_state_path(path);
  const bool main_file = std::regex_search(views.code, main_definition_re());
  const bool serializes = std::regex_search(views.code, serialize_sink_re());

  auto add = [&](std::size_t line, std::string_view rule, std::string message) {
    if (suppressions.covers(line, rule)) return;
    findings.push_back({label, line, std::string(rule), std::move(message)});
  };

  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    const std::size_t line = i + 1;
    const std::string& code = code_lines[i];
    if (!harness_file && std::regex_search(code, raw_write_re()))
      add(line, kRawWrite,
          "raw file write bypasses the harness atomic writer; use "
          "AtomicFileWriter/write_file_atomic so a crash cannot publish a torn "
          "artifact");
    if (std::regex_search(code, nondet_rng_re()))
      add(line, kNondetRng,
          "nondeterministic randomness/time source; derive all randomness from "
          "a seeded stats::Rng so resumed runs stay byte-identical");
    if (serializes && std::regex_search(code, unordered_re()))
      add(line, kUnorderedSerialize,
          "unordered container in a file that serializes output; use std::map "
          "or a sorted vector (or suppress after proving contents never reach "
          "an artifact)");
    if (!main_file && std::regex_search(code, exit_call_re()))
      add(line, kExitCall,
          "exit() outside a main() file skips destructors and the "
          "locpriv::Error exit-code taxonomy; throw instead");
    if (!process_owner_file) {
      for (auto match = std::sregex_iterator(code.begin(), code.end(),
                                             raw_process_re());
           match != std::sregex_iterator(); ++match) {
        if (member_or_class_qualified(code,
                                      static_cast<std::size_t>(match->position())))
          continue;
        add(line, kRawProcess,
            "raw " + (*match)[1].str() +
                "() outside src/core/harness/ or src/service/; run children "
                "through harness::Supervisor or service::LocprivService so "
                "rlimits, reaping, and graceful shutdown stay centralized");
        break;  // One finding per line, matching the other rules.
      }
    }
    if (longlived_file) {
      for (auto match = std::sregex_iterator(code.begin(), code.end(),
                                             growth_call_re());
           match != std::sregex_iterator(); ++match) {
        if (!member_like_receiver((*match)[1].str())) continue;
        // A trim/reset within eight code lines either way is taken as the
        // matching bound (the pop to this push). Anything subtler needs an
        // explicit locpriv-lint: allow(unbounded-growth) with a reason.
        bool trimmed = false;
        const std::size_t lo = i >= 8 ? i - 8 : 0;
        const std::size_t hi = std::min(code_lines.size() - 1, i + 8);
        for (std::size_t j = lo; j <= hi && !trimmed; ++j)
          trimmed = std::regex_search(code_lines[j], trim_token_re());
        if (trimmed) continue;
        add(line, kUnboundedGrowth,
            "growth of long-lived container '" + (*match)[1].str() +
                (*match)[2].str() +
                "' with no cap or trim within 8 lines; bound it (window, "
                "watermark, rolling cap) or suppress with a justification");
        break;  // One finding per line, matching the other rules.
      }
    }
  }

  // swallowed-catch needs the handler block, which can span lines.
  std::vector<std::size_t> line_starts = {0};
  for (std::size_t i = 0; i < views.code.size(); ++i)
    if (views.code[i] == '\n') line_starts.push_back(i + 1);
  auto begin =
      std::sregex_iterator(views.code.begin(), views.code.end(), catch_all_re());
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const auto offset = static_cast<std::size_t>(it->position());
    const std::string block = catch_block(views.code, offset + it->length());
    if (std::regex_search(block, handler_forwards_re())) continue;
    add(line_of_offset(line_starts, offset), kSwallowedCatch,
        "catch (...) swallows the exception (handler neither rethrows, stores "
        "current_exception, nor aborts)");
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return findings;
}

std::vector<Finding> lint_file(const fs::path& file, const std::string& label) {
  std::ifstream in(file, std::ios::binary);
  if (!in) throw std::runtime_error("locpriv-lint: cannot read " + file.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_source(label, buffer.str());
}

std::vector<Finding> lint_tree(const fs::path& root, std::size_t* files_scanned) {
  static constexpr std::string_view kDirs[] = {"src", "bench", "tools", "examples",
                                               "tests"};
  std::vector<fs::path> sources;
  for (const std::string_view dir : kDirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".cpp" || ext == ".hpp") sources.push_back(entry.path());
    }
  }
  std::sort(sources.begin(), sources.end());
  if (files_scanned != nullptr) *files_scanned = sources.size();

  std::vector<Finding> findings;
  for (const fs::path& source : sources) {
    const std::string label =
        source.lexically_relative(root).generic_string();
    std::vector<Finding> file_findings = lint_file(source, label);
    findings.insert(findings.end(), std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;  // Already (file, line, rule)-ordered: files were sorted.
}

std::string format_text(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" + finding.rule +
         "] " + finding.message;
}

std::string format_github(const Finding& finding) {
  return "::error file=" + finding.file + ",line=" + std::to_string(finding.line) +
         ",title=locpriv-lint(" + finding.rule + ")::" + finding.message;
}

}  // namespace locpriv::lint
