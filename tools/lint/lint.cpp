#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iterator>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "lint/index.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace locpriv::lint {

namespace {

namespace fs = std::filesystem;

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type begin = 0;
  while (begin <= text.size()) {
    const auto end = text.find('\n', begin);
    if (end == std::string::npos) {
      lines.push_back(text.substr(begin));
      break;
    }
    lines.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Rule names.
// ---------------------------------------------------------------------------

constexpr std::string_view kRawWrite = "raw-write";
constexpr std::string_view kNondetRng = "nondet-rng";
constexpr std::string_view kUnorderedSerialize = "unordered-serialize";
constexpr std::string_view kSwallowedCatch = "swallowed-catch";
constexpr std::string_view kExitCall = "exit-call";
constexpr std::string_view kRawProcess = "raw-process";
constexpr std::string_view kUnboundedGrowth = "unbounded-growth";
constexpr std::string_view kUncheckedIo = "unchecked-io";
constexpr std::string_view kBadSuppression = "bad-suppression";
constexpr std::string_view kEintrRetry = "eintr-retry";
constexpr std::string_view kFdGuard = "fd-guard";
constexpr std::string_view kSignalSafety = "signal-safety";
constexpr std::string_view kBlockingUnderLock = "blocking-under-lock";
constexpr std::string_view kSeqNarrowing = "seq-narrowing";
constexpr std::string_view kVerbExhaustive = "verb-exhaustive";
constexpr std::string_view kLinearSpatialScan = "linear-spatial-scan";

// ---------------------------------------------------------------------------
// v1 line rules: regexes over the lexer's blanked code view. Behaviour is
// identical to the v1 scanner — the views are produced by the same state
// machine, now inside lex().
// ---------------------------------------------------------------------------

const std::regex& raw_write_re() {
  static const std::regex re(
      R"re(\bstd::ofstream\b|\bfopen\s*\(|\bfreopen\s*\(|\bstd::rename\s*\(|\bstd::filesystem::rename\s*\(|\bfs::rename\s*\()re");
  return re;
}

const std::regex& nondet_rng_re() {
  static const std::regex re(
      R"re(\bstd::rand\b|\brand\s*\(\s*\)|\bsrand\s*\(|\brandom_device\b|\btime\s*\(\s*(nullptr|NULL|0)\s*\))re");
  return re;
}

const std::regex& unordered_re() {
  static const std::regex re(R"re(\bstd::unordered_(map|set|multimap|multiset)\b)re");
  return re;
}

// Tokens that mean "this file produces serialized artifacts": the util
// writers, the bench export helpers, and the harness publish entry points.
const std::regex& serialize_sink_re() {
  static const std::regex re(
      R"re(\b(JsonWriter|CsvWriter|SeriesCsv|export_table|write_file_atomic|AtomicFileWriter|write_plt|csv_escape|json_escape)\b)re");
  return re;
}

const std::regex& exit_call_re() {
  static const std::regex re(R"re(\bexit\s*\(|\bquick_exit\s*\(|\b_Exit\s*\()re");
  return re;
}

// Raw process-lifecycle primitives. The supervisor owns fork/kill/waitpid
// (child cleanup, rlimits, SIGTERM escalation, quarantine bookkeeping);
// scattered direct calls would leak children past graceful shutdown.
const std::regex& raw_process_re() {
  static const std::regex re(
      R"re(\b(fork|vfork|execl|execle|execlp|execv|execve|execvp|fexecve|posix_spawnp?|waitpid|kill)\s*\()re");
  return re;
}

// True when the name at `pos` is a C++ member or class-qualified call that
// merely shares a POSIX spelling — `rng.fork()`, `child->kill()`,
// `Rng::fork(` — as opposed to the real syscall wrapper. A global-namespace
// qualifier (`::fork(`) is still the syscall.
bool member_or_class_qualified(const std::string& code, std::size_t pos) {
  if (pos >= 1 && code[pos - 1] == '.') return true;
  if (pos >= 2 && code[pos - 2] == '-' && code[pos - 1] == '>') return true;
  if (pos >= 2 && code[pos - 2] == ':' && code[pos - 1] == ':' && pos >= 3) {
    const char before = code[pos - 3];
    return std::isalnum(static_cast<unsigned char>(before)) != 0 || before == '_';
  }
  return false;
}

const std::regex& main_definition_re() {
  static const std::regex re(R"re(\bint\s+main\s*\()re");
  return re;
}

const std::regex& catch_all_re() {
  static const std::regex re(R"re(catch\s*\(\s*\.\.\.\s*\))re");
  return re;
}

// A catch-all handler is fine when it forwards the exception somewhere:
// rethrow, capture via current_exception, or a deliberate hard stop.
const std::regex& handler_forwards_re() {
  static const std::regex re(
      R"re(\bthrow\b|\bcurrent_exception\b|\brethrow_exception\b|\babort\s*\()re");
  return re;
}

// Growth calls whose receiver is a member-access chain. Capture 1 is the
// chain ("shard.retained." / "stats_."), capture 2 the growth verb.
const std::regex& growth_call_re() {
  static const std::regex re(
      R"re(((?:[A-Za-z_]\w*(?:\.|->))+)(push_back|emplace_back|push_front|emplace_front)\s*\()re");
  return re;
}

// Evidence nearby code bounds the container: any explicit trim/reset call.
const std::regex& trim_token_re() {
  static const std::regex re(
      R"re(\b(pop_front|pop_back|erase|resize|clear|shrink_to_fit)\s*\()re");
  return re;
}

// Long-lived state heuristic: a chained receiver (`shard.retained`) or any
// component with the trailing-underscore member convention (`stats_`).
// Plain locals (`fields.push_back`) pass — the rule targets containers that
// outlive one call, where growth without a cap is a slow memory leak in an
// always-on service.
bool member_like_receiver(std::string chain) {
  std::string::size_type arrow;
  while ((arrow = chain.find("->")) != std::string::npos)
    chain.replace(arrow, 2, ".");
  std::size_t components = 0;
  std::stringstream parts(chain);
  std::string part;
  bool member_named = false;
  while (std::getline(parts, part, '.')) {
    if (part.empty()) continue;
    ++components;
    if (part.back() == '_') member_named = true;
  }
  return components >= 2 || member_named;
}

// The unbounded-growth rule only patrols the always-on daemon and the
// long-running sweep supervisor — the places where a slowly growing
// container is a production memory leak rather than a transient buffer.
bool is_longlived_state_path(std::string_view path) {
  const std::string p(path);
  return p.find("src/service/") != std::string::npos ||
         p.find("src/core/harness/") != std::string::npos;
}

const std::regex& suppression_re() {
  static const std::regex re(R"re(locpriv-lint:\s*allow\(([^)]*)\))re");
  return re;
}

bool is_harness_path(std::string_view path) {
  return std::string(path).find("src/core/harness/") != std::string::npos;
}

// The raw-process rule alone is also waived under src/service/: locprivd IS
// a process supervisor (fork/kill/waitpid are its job, with the same
// reap-and-escalate discipline as the harness). Everything else — atomic
// writes, deterministic RNG, ordered serialization — still applies there.
bool may_own_processes(std::string_view path) {
  return is_harness_path(path) ||
         std::string(path).find("src/service/") != std::string::npos;
}

bool is_service_path(std::string_view path) {
  return std::string(path).find("src/service/") != std::string::npos;
}

bool path_ends_with(std::string_view path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0 &&
         (path.size() == suffix.size() || path[path.size() - suffix.size() - 1] == '/');
}

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t");
  return text.substr(begin, end - begin + 1);
}

struct Suppressions {
  // line (1-based) -> rules allowed on that line and the following one.
  std::map<std::size_t, std::vector<std::string>> allowed;
  std::vector<Finding> errors;  // bad-suppression findings.

  bool covers(std::size_t line, std::string_view rule) const {
    for (const std::size_t at : {line, line - 1}) {
      const auto it = allowed.find(at);
      if (it == allowed.end()) continue;
      for (const std::string& name : it->second)
        if (name == rule) return true;
    }
    return false;
  }
};

Suppressions collect_suppressions(const std::string& path,
                                  const std::vector<std::string>& comment_lines) {
  Suppressions result;
  for (std::size_t i = 0; i < comment_lines.size(); ++i) {
    const std::size_t line = i + 1;
    auto begin = std::sregex_iterator(comment_lines[i].begin(), comment_lines[i].end(),
                                      suppression_re());
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      std::stringstream names((*it)[1].str());
      std::string name;
      bool any = false;
      while (std::getline(names, name, ',')) {
        name = trim(name);
        if (name.empty()) continue;
        any = true;
        if (is_known_rule(name)) {
          result.allowed[line].push_back(name);
        } else {
          result.errors.push_back(
              {path, line, std::string(kBadSuppression),
               "unknown rule '" + name + "' in locpriv-lint suppression"});
        }
      }
      if (!any)
        result.errors.push_back({path, line, std::string(kBadSuppression),
                                 "empty locpriv-lint suppression"});
    }
  }
  return result;
}

// Finds the extent of the {...} block following `from` in `code`; returns
// the block's contents, or empty when no block opens (e.g. macro trickery —
// then the conservative answer is "does not forward").
std::string catch_block(const std::string& code, std::size_t from) {
  const auto open = code.find('{', from);
  if (open == std::string::npos) return "";
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '{') ++depth;
    if (code[i] == '}' && --depth == 0) return code.substr(open + 1, i - open - 1);
  }
  return code.substr(open + 1);
}

std::size_t line_of_offset(const std::vector<std::size_t>& line_starts,
                           std::size_t offset) {
  const auto it =
      std::upper_bound(line_starts.begin(), line_starts.end(), offset);
  return static_cast<std::size_t>(it - line_starts.begin());
}

// ---------------------------------------------------------------------------
// Per-file analysis: semantic index + suppressions + per-file findings.
// ---------------------------------------------------------------------------

struct FileAnalysis {
  FileIndex index;
  Suppressions suppressions;
  std::vector<Finding> findings;  // per-file findings, suppression-filtered
};

bool is_ident_token(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool ends_with(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool in_set(std::string_view name, std::initializer_list<std::string_view> set) {
  for (const std::string_view entry : set)
    if (name == entry) return true;
  return false;
}

// Tokens between two indices (inclusive lparen-exclusive style handled by
// callers) containing an identifier `name`.
bool range_has_ident(const FileIndex& file, std::size_t lo, std::size_t hi,
                     std::string_view name) {
  for (std::size_t i = lo; i < hi && i < file.src.tokens.size(); ++i)
    if (is_ident_token(file.src.tokens[i], name)) return true;
  return false;
}

// ---- eintr-retry ----------------------------------------------------------

void rule_eintr_retry(FileAnalysis& analysis) {
  const FileIndex& file = analysis.index;
  for (const CallSite& call : file.calls) {
    if (call.qual != CallQual::kNone && call.qual != CallQual::kGlobal) continue;
    if (!in_set(call.name, {"poll", "read", "write", "waitpid"})) continue;
    // Non-blocking invocations never see EINTR-worth-retrying semantics the
    // rule targets: waitpid(..., WNOHANG) polls and returns.
    if (range_has_ident(file, call.lparen + 1, call.rparen, "WNOHANG")) continue;
    const bool retried = file.enclosing_loop_contains(
        call.name_token,
        [](const Token& t) { return is_ident_token(t, "EINTR"); });
    if (retried) continue;
    analysis.findings.push_back(
        {file.path, call.line, std::string(kEintrRetry),
         "raw ::" + call.name +
             "() result is not re-checked in an errno == EINTR retry loop; a "
             "stray signal would surface as a spurious failure (wrap the call "
             "like write_all/read_available do)"});
  }
}

// ---- fd-guard -------------------------------------------------------------

void rule_fd_guard(FileAnalysis& analysis) {
  const FileIndex& file = analysis.index;
  const std::vector<Token>& tokens = file.src.tokens;
  for (const FunctionDef& fn : file.functions) {
    const std::vector<const CallSite*> calls = file.calls_in(fn);
    for (const CallSite* creator : calls) {
      if (creator->qual != CallQual::kNone && creator->qual != CallQual::kGlobal)
        continue;
      const bool scalar = in_set(creator->name, {"open", "openat", "creat", "dup",
                                                "socket", "eventfd", "memfd_create"});
      const bool array = in_set(creator->name, {"pipe", "pipe2", "socketpair"});
      if (!scalar && !array) continue;

      // Identify the local fd variable the descriptor lands in.
      std::string var;
      if (array) {
        const auto args = split_arguments(file, *creator);
        if (args.empty()) continue;
        for (std::size_t i = args[0].first; i < args[0].second; ++i)
          if (tokens[i].kind == TokenKind::kIdentifier) {
            var = tokens[i].text;
            break;
          }
        if (var.empty()) continue;
        // Member arrays are owned by the object, not this scope.
        if (ends_with(var, "_")) continue;
        if (args[0].first > 0 && (tokens[args[0].first].kind == TokenKind::kPunct))
          continue;
      } else {
        // Pattern: `var = [::]creator(` — anything else (returned directly,
        // passed straight to a guard/owner) is not a bare local binding.
        std::size_t at = creator->name_token;
        if (creator->qual == CallQual::kGlobal && at >= 1) --at;  // skip '::'
        if (at < 2) continue;
        if (tokens[at - 1].kind != TokenKind::kPunct || tokens[at - 1].text != "=")
          continue;
        if (tokens[at - 2].kind != TokenKind::kIdentifier) continue;
        var = tokens[at - 2].text;
        if (ends_with(var, "_")) continue;  // member store: object owns it
        if (at >= 3 && tokens[at - 3].kind == TokenKind::kPunct &&
            (tokens[at - 3].text == "." || tokens[at - 3].text == "->"))
          continue;  // field store: owner is elsewhere
      }

      const auto is_borrower = [](std::string_view name) {
        return in_set(name, {"read", "write", "pread", "pwrite", "fsync",
                             "fdatasync", "fcntl", "lseek", "ftruncate",
                             "isatty", "ioctl", "poll", "flock",
                             "set_nonblocking"});
      };
      const auto is_closer = [](std::string_view name) {
        return name == "closedir" || name.rfind("close", 0) == 0;
      };
      // True when token `j` sits inside the argument list of a call that
      // only borrows (or closes) the descriptor — such an occurrence is not
      // an ownership transfer even inside a return statement.
      const auto borrowed_at = [&](std::size_t j) {
        for (const CallSite* c : calls)
          if (c->lparen < j && j < c->rparen &&
              (is_borrower(c->name) || is_closer(c->name)))
            return true;
        return false;
      };
      bool closed = false;
      bool escaped = false;
      for (const CallSite* other : calls) {
        if (other == creator) continue;
        if (!range_has_ident(file, other->lparen + 1, other->rparen, var)) continue;
        if (is_closer(other->name)) {
          closed = true;
        } else if (!is_borrower(other->name)) {
          // Handed to something that is not a pure borrower: an RAII guard,
          // a struct field setter, dup2, a helper that takes ownership.
          escaped = true;
        }
      }
      for (std::size_t i = fn.body_open; i <= fn.body_close && !escaped; ++i) {
        const Token& t = tokens[i];
        if (is_ident_token(t, "return")) {
          // `return ... var ...;` — the caller owns it now (unless the
          // mention is only an argument of a borrowing call).
          for (std::size_t j = i + 1; j <= fn.body_close; ++j) {
            if (tokens[j].kind == TokenKind::kPunct && tokens[j].text == ";") break;
            if (is_ident_token(tokens[j], var) && !borrowed_at(j)) {
              escaped = true;
              break;
            }
          }
        } else if (is_ident_token(t, var) && i > fn.body_open &&
                   tokens[i - 1].kind == TokenKind::kPunct &&
                   tokens[i - 1].text == "=") {
          escaped = true;  // stored into another name (member, array, alias)
        }
      }
      if (closed || escaped) continue;
      analysis.findings.push_back(
          {file.path, creator->line, std::string(kFdGuard),
           "fd from ::" + creator->name + "() bound to '" + var +
               "' is neither closed in this function nor handed to an owner; "
               "wrap it in harness::FdGuard (or close it on every exit path)"});
    }
  }
}

// ---- blocking-under-lock --------------------------------------------------

void rule_blocking_under_lock(FileAnalysis& analysis) {
  const FileIndex& file = analysis.index;
  const std::vector<Token>& tokens = file.src.tokens;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (!is_ident_token(tokens[i], "MutexLock")) continue;
    if (i > 0 && tokens[i - 1].kind == TokenKind::kPunct &&
        (tokens[i - 1].text == "." || tokens[i - 1].text == "->"))
      continue;
    // Declaration shape: `MutexLock name(...)` / `MutexLock name{...}`.
    if (tokens[i + 1].kind != TokenKind::kIdentifier) continue;
    if (tokens[i + 2].kind != TokenKind::kPunct ||
        (tokens[i + 2].text != "(" && tokens[i + 2].text != "{"))
      continue;
    const std::string& lock_name = tokens[i + 1].text;
    const std::size_t scope = file.innermost_scope(i);
    const std::size_t live_end =
        scope == kNpos ? tokens.size() - 1 : file.scopes[scope].close;
    for (const CallSite& call : file.calls) {
      if (call.name_token <= i || call.name_token > live_end) continue;
      if (call.qual == CallQual::kMember) continue;
      if (!in_set(call.name,
                  {"poll", "ppoll", "select", "read", "write", "pread", "pwrite",
                   "readv", "writev", "waitpid", "fsync", "fdatasync", "open",
                   "openat", "usleep", "nanosleep", "sleep", "sleep_for",
                   "sleep_until", "accept", "connect", "recv", "recvfrom", "send",
                   "sendto", "system", "popen", "flock"}))
        continue;
      analysis.findings.push_back(
          {file.path, call.line, std::string(kBlockingUnderLock),
           "blocking " + call.name + "() while MutexLock '" + lock_name +
               "' (declared line " + std::to_string(tokens[i].line) +
               ") is live; every waiter on that mutex stalls behind the "
               "syscall — drop the lock first"});
    }
  }
}

// ---- seq-narrowing --------------------------------------------------------

bool is_narrow_type(std::string_view name) {
  return in_set(name, {"int", "unsigned", "short", "uint32_t", "int32_t",
                       "uint16_t", "int16_t", "uint8_t", "int8_t"});
}

bool is_counter_name(std::string_view name) {
  return ends_with(name, "_seq") || ends_with(name, "_bytes");
}

void rule_seq_narrowing(FileAnalysis& analysis) {
  const FileIndex& file = analysis.index;
  if (!is_service_path(file.path)) return;
  const std::vector<Token>& tokens = file.src.tokens;
  auto add = [&](std::size_t line, const std::string& what) {
    analysis.findings.push_back(
        {file.path, line, std::string(kSeqNarrowing),
         what + "; wire seq/byte counters are 64-bit end to end — a 32-bit "
                "view silently wraps after 4Gi events"});
  };
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    // a) narrow declaration: `uint32_t submit_seq`.
    if (t.kind == TokenKind::kIdentifier && is_counter_name(t.text) && i > 0 &&
        tokens[i - 1].kind == TokenKind::kIdentifier &&
        is_narrow_type(tokens[i - 1].text)) {
      add(t.line, "counter '" + t.text + "' declared with 32-bit type '" +
                      tokens[i - 1].text + "'");
      continue;
    }
    // b) `static_cast<narrow>(...counter...)`.
    if (is_ident_token(t, "static_cast") && i + 1 < tokens.size() &&
        tokens[i + 1].kind == TokenKind::kPunct && tokens[i + 1].text == "<") {
      std::size_t j = i + 2;
      int depth = 1;
      bool narrow = false;
      while (j < tokens.size() && depth > 0) {
        const Token& u = tokens[j];
        if (u.kind == TokenKind::kPunct && u.text == "<") ++depth;
        if (u.kind == TokenKind::kPunct && (u.text == ">" || u.text == ">>")) {
          depth -= u.text == ">>" ? 2 : 1;
          if (depth <= 0) break;
        }
        if (u.kind == TokenKind::kIdentifier && is_narrow_type(u.text)) narrow = true;
        ++j;
      }
      if (!narrow || j + 1 >= tokens.size()) continue;
      if (tokens[j + 1].kind != TokenKind::kPunct || tokens[j + 1].text != "(")
        continue;
      int paren = 1;
      for (std::size_t k = j + 2; k < tokens.size() && paren > 0; ++k) {
        const Token& u = tokens[k];
        if (u.kind == TokenKind::kPunct && u.text == "(") ++paren;
        if (u.kind == TokenKind::kPunct && u.text == ")") --paren;
        if (u.kind == TokenKind::kIdentifier && is_counter_name(u.text)) {
          add(t.line, "static_cast to a 32-bit type applied to counter '" +
                          u.text + "'");
          break;
        }
      }
      continue;
    }
    // c) C cast: `(uint32_t)counter` / `(std::uint32_t)counter`.
    if (t.kind == TokenKind::kPunct && t.text == "(") {
      std::size_t j = i + 1;
      if (j < tokens.size() && is_ident_token(tokens[j], "std")) j += 2;
      if (j < tokens.size() && tokens[j].kind == TokenKind::kIdentifier &&
          is_narrow_type(tokens[j].text) && j + 2 < tokens.size() &&
          tokens[j + 1].kind == TokenKind::kPunct && tokens[j + 1].text == ")" &&
          tokens[j + 2].kind == TokenKind::kIdentifier &&
          is_counter_name(tokens[j + 2].text)) {
        add(t.line, "C-style cast to 32-bit type applied to counter '" +
                        tokens[j + 2].text + "'");
      }
    }
  }
}

// ---- linear-spatial-scan --------------------------------------------------

// The spatial hot paths that must run through geo::GeoTree / GeoCellIndex
// instead of rescanning whole PoI/fix containers per query.
bool is_spatial_hot_path(std::string_view path) {
  const std::string p(path);
  return p.find("src/poi/") != std::string::npos ||
         p.find("src/privacy/") != std::string::npos;
}

bool is_distance_call(std::string_view name) {
  return in_set(name, {"haversine_m", "equirectangular_m", "haversine_from",
                       "equirectangular_from"});
}

void rule_linear_spatial_scan(FileAnalysis& analysis) {
  const FileIndex& file = analysis.index;
  if (!is_spatial_hot_path(file.path)) return;
  for (const CallSite& call : file.calls) {
    if (!is_distance_call(call.name)) continue;
    if (!file.inside_loop(call.name_token)) continue;
    analysis.findings.push_back(
        {file.path, call.line, std::string(kLinearSpatialScan),
         "distance call " + call.name +
             "() inside a loop in a spatial hot path; route the scan through "
             "geo::GeoTree / geo::GeoCellIndex, or suppress with a "
             "justification if the loop is inherently bounded (window, "
             "candidate refine, oracle)"});
  }
}

// ---- unchecked-io ---------------------------------------------------------

// Durability calls whose failure loses data when nobody looks: a write that
// came up short, an fsync the kernel refused, a rename that never published.
// close/unlink are deliberately out of scope — their failure modes are
// cleanup noise, and flagging them would bury the signal.
bool is_durability_call(std::string_view name) {
  return in_set(name, {"write", "pwrite", "fsync", "fdatasync", "rename",
                       "ftruncate"});
}

// Flags durability-relevant IO whose result is discarded — the call is a
// whole expression statement — under the storage-owning directories. Covers
// the raw spellings (`fsync(fd);`, `::write(...)`) and the injectable
// harness::FileOps layer (`ops.fsync(fd);`); member calls through other
// receivers (std::ostream::write) conventionally discard their return.
// `(void)` casts and justified suppressions are the two visible escapes.
void rule_unchecked_io(FileAnalysis& analysis) {
  const FileIndex& file = analysis.index;
  if (!is_harness_path(file.path) && !is_service_path(file.path)) return;
  const std::vector<Token>& tokens = file.src.tokens;
  for (const CallSite& call : file.calls) {
    if (!is_durability_call(call.name)) continue;
    std::size_t start = call.name_token;  // first token of the call expression
    if (call.qual == CallQual::kGlobal) {
      start = call.name_token - 1;  // the `::`
    } else if (call.qual == CallQual::kMember) {
      if (call.name_token < 2) continue;
      const Token& receiver = tokens[call.name_token - 2];
      if (receiver.kind != TokenKind::kIdentifier ||
          receiver.text.find("ops") == std::string::npos)
        continue;
      start = call.name_token - 2;
    } else if (call.qual == CallQual::kType) {
      continue;  // std::rename / fs::rename — the raw-write rule owns those.
    }
    if (start == 0 || call.rparen + 1 >= tokens.size()) continue;
    const Token& after = tokens[call.rparen + 1];
    if (after.kind != TokenKind::kPunct || after.text != ";") continue;
    const Token& before = tokens[start - 1];
    const bool boundary =
        (before.kind == TokenKind::kPunct &&
         (before.text == ";" || before.text == "{" || before.text == "}" ||
          before.text == ")")) ||
        is_ident_token(before, "else") || is_ident_token(before, "do");
    if (!boundary) continue;
    // `(void)ops.fsync(fd);` is an explicit, visible discard.
    if (before.text == ")" && start >= 3 &&
        is_ident_token(tokens[start - 2], "void") &&
        tokens[start - 3].kind == TokenKind::kPunct &&
        tokens[start - 3].text == "(")
      continue;
    analysis.findings.push_back(
        {file.path, call.line, std::string(kUncheckedIo),
         "result of " + call.name +
             "() is discarded in durability-critical code; a storage fault "
             "here becomes silent data loss — check it, or suppress with a "
             "reason when failure genuinely cannot matter (cleanup on an "
             "already-failing path)"});
  }
}

// ---------------------------------------------------------------------------
// analyze_source: lex + index + suppressions + every per-file rule.
// ---------------------------------------------------------------------------

FileAnalysis analyze_source(std::string_view path, std::string_view content) {
  FileAnalysis analysis;
  analysis.index = build_index(std::string(path), content);
  const std::string& code_view = analysis.index.src.code;
  const std::string& comments_view = analysis.index.src.comments;
  const std::vector<std::string> code_lines = split_lines(code_view);
  const std::vector<std::string> comment_lines = split_lines(comments_view);
  const std::string label(path);

  analysis.suppressions = collect_suppressions(label, comment_lines);
  std::vector<Finding> findings = std::move(analysis.suppressions.errors);
  analysis.suppressions.errors.clear();

  const bool harness_file = is_harness_path(path);
  const bool process_owner_file = may_own_processes(path);
  const bool longlived_file = is_longlived_state_path(path);
  const bool main_file = std::regex_search(code_view, main_definition_re());
  const bool serializes = std::regex_search(code_view, serialize_sink_re());

  auto add = [&](std::size_t line, std::string_view rule, std::string message) {
    if (analysis.suppressions.covers(line, rule)) return;
    findings.push_back({label, line, std::string(rule), std::move(message)});
  };

  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    const std::size_t line = i + 1;
    const std::string& code = code_lines[i];
    if (!harness_file && std::regex_search(code, raw_write_re()))
      add(line, kRawWrite,
          "raw file write bypasses the harness atomic writer; use "
          "AtomicFileWriter/write_file_atomic so a crash cannot publish a torn "
          "artifact");
    if (std::regex_search(code, nondet_rng_re()))
      add(line, kNondetRng,
          "nondeterministic randomness/time source; derive all randomness from "
          "a seeded stats::Rng so resumed runs stay byte-identical");
    if (serializes && std::regex_search(code, unordered_re()))
      add(line, kUnorderedSerialize,
          "unordered container in a file that serializes output; use std::map "
          "or a sorted vector (or suppress after proving contents never reach "
          "an artifact)");
    if (!main_file && std::regex_search(code, exit_call_re()))
      add(line, kExitCall,
          "exit() outside a main() file skips destructors and the "
          "locpriv::Error exit-code taxonomy; throw instead");
    if (!process_owner_file) {
      for (auto match = std::sregex_iterator(code.begin(), code.end(),
                                             raw_process_re());
           match != std::sregex_iterator(); ++match) {
        if (member_or_class_qualified(code,
                                      static_cast<std::size_t>(match->position())))
          continue;
        add(line, kRawProcess,
            "raw " + (*match)[1].str() +
                "() outside src/core/harness/ or src/service/; run children "
                "through harness::Supervisor or service::LocprivService so "
                "rlimits, reaping, and graceful shutdown stay centralized");
        break;  // One finding per line, matching the other rules.
      }
    }
    if (longlived_file) {
      for (auto match = std::sregex_iterator(code.begin(), code.end(),
                                             growth_call_re());
           match != std::sregex_iterator(); ++match) {
        if (!member_like_receiver((*match)[1].str())) continue;
        // A trim/reset within eight code lines either way is taken as the
        // matching bound (the pop to this push). Anything subtler needs an
        // explicit locpriv-lint: allow(unbounded-growth) with a reason.
        bool trimmed = false;
        const std::size_t lo = i >= 8 ? i - 8 : 0;
        const std::size_t hi = std::min(code_lines.size() - 1, i + 8);
        for (std::size_t j = lo; j <= hi && !trimmed; ++j)
          trimmed = std::regex_search(code_lines[j], trim_token_re());
        if (trimmed) continue;
        add(line, kUnboundedGrowth,
            "growth of long-lived container '" + (*match)[1].str() +
                (*match)[2].str() +
                "' with no cap or trim within 8 lines; bound it (window, "
                "watermark, rolling cap) or suppress with a justification");
        break;  // One finding per line, matching the other rules.
      }
    }
  }

  // swallowed-catch needs the handler block, which can span lines.
  std::vector<std::size_t> line_starts = {0};
  for (std::size_t i = 0; i < code_view.size(); ++i)
    if (code_view[i] == '\n') line_starts.push_back(i + 1);
  auto begin =
      std::sregex_iterator(code_view.begin(), code_view.end(), catch_all_re());
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const auto offset = static_cast<std::size_t>(it->position());
    const std::string block = catch_block(code_view, offset + it->length());
    if (std::regex_search(block, handler_forwards_re())) continue;
    add(line_of_offset(line_starts, offset), kSwallowedCatch,
        "catch (...) swallows the exception (handler neither rethrows, stores "
        "current_exception, nor aborts)");
  }

  // v2 flow rules append straight into analysis.findings; route them through
  // the same suppression filter.
  analysis.findings.clear();
  rule_eintr_retry(analysis);
  rule_fd_guard(analysis);
  rule_blocking_under_lock(analysis);
  rule_seq_narrowing(analysis);
  rule_linear_spatial_scan(analysis);
  rule_unchecked_io(analysis);
  for (Finding& finding : analysis.findings) {
    if (analysis.suppressions.covers(finding.line, finding.rule)) continue;
    findings.push_back(std::move(finding));
  }
  analysis.findings = std::move(findings);
  return analysis;
}

// ---------------------------------------------------------------------------
// Cross-file rules over the whole collection of analyses.
// ---------------------------------------------------------------------------

// ---- signal-safety --------------------------------------------------------

bool is_signal_constant(std::string_view name) {
  return name == "SIG_DFL" || name == "SIG_IGN" || name == "SIG_ERR";
}

// Extracts the simple names of functions registered as signal handlers in
// `file`: `x.sa_handler = [&]name` assignments and `signal(SIG, name)` call
// arguments (sigaction(2) registrations flow through sa_handler).
std::vector<std::string> handler_names(const FileIndex& file) {
  std::vector<std::string> names;
  const std::vector<Token>& tokens = file.src.tokens;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (!is_ident_token(tokens[i], "sa_handler") &&
        !is_ident_token(tokens[i], "sa_sigaction"))
      continue;
    if (tokens[i + 1].kind != TokenKind::kPunct || tokens[i + 1].text != "=")
      continue;
    std::size_t j = i + 2;
    if (tokens[j].kind == TokenKind::kPunct && tokens[j].text == "&") ++j;
    // Take the last identifier of a possibly qualified chain.
    std::string last;
    while (j < tokens.size()) {
      if (tokens[j].kind == TokenKind::kIdentifier) {
        last = tokens[j].text;
        ++j;
        if (j < tokens.size() && tokens[j].kind == TokenKind::kPunct &&
            tokens[j].text == "::") {
          ++j;
          continue;
        }
      }
      break;
    }
    if (!last.empty() && !is_signal_constant(last)) names.push_back(last);
  }
  for (const CallSite& call : file.calls) {
    if (call.qual == CallQual::kMember) continue;
    if (call.name != "signal") continue;
    const auto args = split_arguments(file, call);
    if (args.size() < 2) continue;
    std::string last;
    for (std::size_t i = args[1].first; i < args[1].second; ++i)
      if (tokens[i].kind == TokenKind::kIdentifier) last = tokens[i].text;
    if (!last.empty() && !is_signal_constant(last)) names.push_back(last);
  }
  return names;
}

// Facilities that are not async-signal-safe: allocation, stdio/logging,
// iostreams, formatting that allocates, and locks.
bool is_signal_unsafe_token(const Token& t) {
  if (t.kind != TokenKind::kIdentifier) return false;
  return in_set(t.text,
                {"LOCPRIV_LOG", "malloc", "calloc", "realloc", "free", "printf",
                 "fprintf", "sprintf", "snprintf", "vprintf", "vfprintf", "puts",
                 "fputs", "fflush", "cout", "cerr", "clog", "endl",
                 "ostringstream", "stringstream", "ofstream", "ifstream",
                 "to_string", "MutexLock", "lock_guard", "unique_lock",
                 "scoped_lock", "new", "delete", "throw"});
}

void rule_signal_safety(const std::vector<FileAnalysis>& files,
                        std::vector<Finding>& out) {
  // Name -> definitions across the tree.
  std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>> defs;
  for (std::size_t f = 0; f < files.size(); ++f)
    for (std::size_t g = 0; g < files[f].index.functions.size(); ++g)
      defs[files[f].index.functions[g].name].emplace_back(f, g);

  std::set<std::pair<std::size_t, std::size_t>> visited;
  std::vector<std::tuple<std::size_t, std::size_t, std::string>> queue;
  for (const FileAnalysis& file : files)
    for (const std::string& handler : handler_names(file.index)) {
      const auto it = defs.find(handler);
      if (it == defs.end()) continue;
      for (const auto& def : it->second)
        if (visited.insert(def).second)
          queue.emplace_back(def.first, def.second, handler);
    }

  for (std::size_t q = 0; q < queue.size() && q < 4096; ++q) {
    const auto [f, g, root] = queue[q];
    const FileAnalysis& analysis = files[f];
    const FunctionDef& fn = analysis.index.functions[g];
    // Scan the body for signal-unsafe facilities.
    for (std::size_t i = fn.body_open; i <= fn.body_close; ++i) {
      const Token& t = analysis.index.src.tokens[i];
      if (!is_signal_unsafe_token(t)) continue;
      if (!analysis.suppressions.covers(t.line, kSignalSafety))
        out.push_back({analysis.index.path, t.line, std::string(kSignalSafety),
                       "'" + fn.name + "' is reachable from signal handler '" +
                           root + "' but uses '" + t.text +
                           "', which is not async-signal-safe; handlers may "
                           "only touch lock-free atomics and raw fds"});
      break;  // One finding per reachable function keeps the report readable.
    }
    // Follow non-member calls to tree-defined functions.
    for (const CallSite* call : analysis.index.calls_in(fn)) {
      if (call->qual == CallQual::kMember) continue;
      const auto it = defs.find(call->name);
      if (it == defs.end()) continue;
      for (const auto& def : it->second)
        if (visited.insert(def).second)
          queue.emplace_back(def.first, def.second, root);
    }
  }
}

// ---- verb-exhaustive ------------------------------------------------------

const FileAnalysis* find_by_suffix(const std::vector<FileAnalysis>& files,
                                   std::string_view suffix) {
  for (const FileAnalysis& file : files)
    if (path_ends_with(file.index.path, suffix)) return &file;
  return nullptr;
}

bool file_has_ident(const FileIndex& file, std::string_view name) {
  for (const Token& t : file.src.tokens)
    if (is_ident_token(t, name)) return true;
  return false;
}

void add_unless_suppressed(const FileAnalysis& file, std::size_t line,
                           std::string_view rule, std::string message,
                           std::vector<Finding>& out) {
  if (file.suppressions.covers(line, rule)) return;
  out.push_back({file.index.path, line, std::string(rule), std::move(message)});
}

void rule_verb_exhaustive(const std::vector<FileAnalysis>& files,
                          const fs::path* root, std::vector<Finding>& out) {
  // 1. Wire verbs: every command the parent can send must be decoded by the
  // shard child; every response a shard can emit must be dispatched by the
  // parent. Names are compared as identifiers, so renaming a constant and
  // forgetting one side fails loudly.
  const FileAnalysis* wire = find_by_suffix(files, "src/service/wire.hpp");
  const FileAnalysis* shard = find_by_suffix(files, "src/service/shard_child.cpp");
  const FileAnalysis* daemon = find_by_suffix(files, "src/service/locprivd.cpp");
  if (wire != nullptr) {
    std::map<std::string, std::size_t> verbs;  // name -> first declaration line
    for (const Token& t : wire->index.src.tokens) {
      if (t.kind != TokenKind::kIdentifier) continue;
      const bool cmd = t.text.rfind("kCmd", 0) == 0 && t.text.size() > 4;
      const bool rsp = t.text.rfind("kRsp", 0) == 0 && t.text.size() > 4;
      if ((cmd || rsp) && verbs.find(t.text) == verbs.end())
        verbs.emplace(t.text, t.line);
    }
    for (const auto& [name, line] : verbs) {
      const bool cmd = name.rfind("kCmd", 0) == 0;
      const FileAnalysis* peer = cmd ? shard : daemon;
      const char* peer_name =
          cmd ? "src/service/shard_child.cpp" : "src/service/locprivd.cpp";
      if (peer == nullptr) continue;  // partial tree: nothing to check against
      if (file_has_ident(peer->index, name)) continue;
      add_unless_suppressed(
          *wire, line, kVerbExhaustive,
          "wire verb " + name + " is never referenced in " + peer_name +
              "; its decode switch must handle (or explicitly reject) every "
              "verb the peer can emit",
          out);
    }
  }

  // 2. Ledger record kinds: every kind keyed_fields_line() writes must have
  // a matching `{"<kind>":` parser on the replay side of the same file.
  if (const FileAnalysis* ledger =
          find_by_suffix(files, "src/core/harness/run_ledger.cpp")) {
    std::set<std::string> parsed;
    static const std::regex kind_re(R"re(\{\\"(\w+)\\":)re");
    for (const Token& t : ledger->index.src.tokens) {
      if (t.kind != TokenKind::kString && t.kind != TokenKind::kRawString) continue;
      for (auto it = std::sregex_iterator(t.text.begin(), t.text.end(), kind_re);
           it != std::sregex_iterator(); ++it)
        parsed.insert((*it)[1].str());
    }
    for (const CallSite& call : ledger->index.calls) {
      if (call.name != "keyed_fields_line") continue;
      const auto args = split_arguments(ledger->index, call);
      if (args.empty()) continue;
      std::string kind;
      for (std::size_t i = args[0].first; i < args[0].second; ++i)
        if (ledger->index.src.tokens[i].kind == TokenKind::kString) {
          kind = ledger->index.src.tokens[i].text;
          break;
        }
      if (kind.empty() || parsed.count(kind) != 0) continue;
      add_unless_suppressed(
          *ledger, call.line, kVerbExhaustive,
          "ledger record kind \"" + kind +
              "\" is written but has no matching parser; replay() would "
              "treat a valid ledger as torn or corrupt",
          out);
    }
  }

  // 3. Exit-code taxonomy: ErrorCode values must biject with the README
  // exit-code table (plus the implicit 0 = success row).
  const FileAnalysis* error = find_by_suffix(files, "src/core/harness/error.hpp");
  if (error != nullptr && root != nullptr) {
    const fs::path readme = *root / "README.md";
    std::ifstream in(readme, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::vector<std::string> readme_lines = split_lines(buffer.str());
      std::map<long, std::size_t> table;  // code -> README line
      static const std::regex row_re(R"re(^\s*\|\s*(\d+)\s*\|)re");
      bool in_section = false;
      for (std::size_t i = 0; i < readme_lines.size(); ++i) {
        const std::string& line = readme_lines[i];
        if (line.find("Exit codes") != std::string::npos) {
          in_section = true;
          continue;
        }
        if (!in_section) continue;
        if (!line.empty() && line[0] == '#') break;  // next section
        std::smatch match;
        if (std::regex_search(line, match, row_re))
          table.emplace(std::stol(match[1].str()), i + 1);
      }
      if (!table.empty()) {
        // Enum members of `enum class ErrorCode { kX = N, ... }`.
        const std::vector<Token>& tokens = error->index.src.tokens;
        std::vector<std::tuple<std::string, long, std::size_t>> members;
        for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
          if (!is_ident_token(tokens[i], "ErrorCode")) continue;
          // Accept an enum-base clause between the name and the brace
          // (`enum class ErrorCode : int {`): skip from the `:` to the `{`.
          std::size_t open = i + 1;
          if (tokens[open].kind == TokenKind::kPunct && tokens[open].text == ":")
            while (open < tokens.size() &&
                   !(tokens[open].kind == TokenKind::kPunct &&
                     tokens[open].text == "{"))
              ++open;
          if (open >= tokens.size() || tokens[open].kind != TokenKind::kPunct ||
              tokens[open].text != "{")
            continue;
          long next_value = 0;
          for (std::size_t j = open + 1; j < tokens.size(); ++j) {
            const Token& t = tokens[j];
            if (t.kind == TokenKind::kPunct && t.text == "}") break;
            if (t.kind != TokenKind::kIdentifier) continue;
            long value = next_value;
            if (j + 2 < tokens.size() && tokens[j + 1].kind == TokenKind::kPunct &&
                tokens[j + 1].text == "=" &&
                tokens[j + 2].kind == TokenKind::kNumber)
              value = std::stol(tokens[j + 2].text);
            members.emplace_back(t.text, value, t.line);
            next_value = value + 1;
            // Skip to the comma so `= N` tokens are not re-read as members.
            while (j + 1 < tokens.size() &&
                   !(tokens[j + 1].kind == TokenKind::kPunct &&
                     (tokens[j + 1].text == "," || tokens[j + 1].text == "}")))
              ++j;
          }
          break;  // first ErrorCode enum only
        }
        std::set<long> enum_values;
        for (const auto& [name, value, line] : members) {
          enum_values.insert(value);
          if (table.count(value) == 0)
            add_unless_suppressed(
                *error, line, kVerbExhaustive,
                "exit code " + std::to_string(value) + " (" + name +
                    ") is missing from the README exit-code table; the "
                    "taxonomy is the CLI's public contract",
                out);
        }
        if (!members.empty()) {
          for (const auto& [value, line] : table) {
            if (value == 0 || enum_values.count(value) != 0) continue;
            out.push_back({"README.md", line, std::string(kVerbExhaustive),
                           "README documents exit code " + std::to_string(value) +
                               " which ErrorCode does not define"});
          }
        }
      }
    }
  }
}

std::vector<Finding> cross_file_rules(const std::vector<FileAnalysis>& files,
                                      const fs::path* root) {
  std::vector<Finding> out;
  rule_signal_safety(files, out);
  rule_verb_exhaustive(files, root, out);
  return out;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
}

std::string read_file(const fs::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) throw std::runtime_error("locpriv-lint: cannot read " + file.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {kBlockingUnderLock,
       "blocking syscall (poll/read/write/waitpid/fsync/sleep/...) while a "
       "util::MutexLock is live in the enclosing scope; every waiter on that "
       "mutex stalls behind the kernel"},
      {kEintrRetry,
       "raw poll/read/write/waitpid whose result is not re-checked inside a "
       "loop mentioning EINTR; a stray signal (profiler, SIGCHLD) turns into "
       "a spurious failure"},
      {kExitCall,
       "exit()/quick_exit()/_Exit() outside a file that defines main(); throw "
       "locpriv::Error so destructors run and the exit-code taxonomy applies"},
      {kFdGuard,
       "function-local fd from open/pipe/dup/socket neither closed in the "
       "function nor handed to an owner; wrap it in harness::FdGuard so every "
       "exit path releases it"},
      {kLinearSpatialScan,
       "haversine/equirectangular distance call inside a loop under src/poi/ "
       "or src/privacy/; per-query scans over whole PoI/fix containers belong "
       "in geo::GeoTree / geo::GeoCellIndex (suppress for inherently bounded "
       "loops: windows, candidate refines, oracles)"},
      {kNondetRng,
       "std::rand/srand/random_device/time(nullptr): nondeterministic source "
       "breaks resume byte-identity; derive randomness from a seeded stats::Rng"},
      {kRawProcess,
       "direct fork/exec/waitpid/kill outside src/core/harness/ or "
       "src/service/; process lifecycle belongs to harness::Supervisor or "
       "service::LocprivService (rlimits, reaping, graceful shutdown)"},
      {kRawWrite,
       "raw std::ofstream/fopen/rename artifact write outside src/core/harness/; "
       "route artifacts through AtomicFileWriter (torn-write invariant)"},
      {kSeqNarrowing,
       "32-bit type or cast applied to a *_seq/*_bytes counter under "
       "src/service/; wire sequence and byte counters are 64-bit end to end"},
      {kSignalSafety,
       "function reachable from a registered signal handler uses a "
       "non-async-signal-safe facility (allocation, logging, iostreams, "
       "locks); handlers may only touch lock-free atomics and raw fds"},
      {kSwallowedCatch,
       "catch (...) that neither rethrows, stores current_exception, nor aborts "
       "— concurrent failures must never be silently dropped"},
      {kUnboundedGrowth,
       "push/emplace onto long-lived state under src/service/ or "
       "src/core/harness/ with no cap or trim in sight; an always-on daemon "
       "must bound every container (window, watermark, or rolling cap)"},
      {kUncheckedIo,
       "write/pwrite/fsync/fdatasync/rename/ftruncate result discarded under "
       "src/core/harness/ or src/service/ (raw spelling or the FileOps "
       "layer); a failed durability call that nobody checks turns a storage "
       "fault into silent data loss"},
      {kUnorderedSerialize,
       "std::unordered_{map,set} in a file that serializes output; iteration "
       "order is nondeterministic, so artifact bytes can vary run to run"},
      {kVerbExhaustive,
       "wire verb, ledger record kind, or exit code without its counterpart: "
       "kCmd* must be decoded in shard_child.cpp, kRsp* in locprivd.cpp, "
       "ledger kinds must parse back in replay(), and ErrorCode must match "
       "the README exit-code table"},
  };
  return kRules;
}

bool is_known_rule(std::string_view name) {
  for (const RuleInfo& rule : rules())
    if (rule.name == name) return true;
  return false;
}

std::vector<Finding> lint_source(std::string_view path, std::string_view content) {
  std::vector<FileAnalysis> files;
  files.push_back(analyze_source(path, content));
  std::vector<Finding> findings = std::move(files[0].findings);
  std::vector<Finding> cross = cross_file_rules(files, nullptr);
  findings.insert(findings.end(), std::make_move_iterator(cross.begin()),
                  std::make_move_iterator(cross.end()));
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule, a.message) < std::tie(b.line, b.rule, b.message);
  });
  return findings;
}

std::vector<Finding> lint_file(const fs::path& file, const std::string& label) {
  return lint_source(label, read_file(file));
}

std::vector<Finding> lint_tree(const fs::path& root, std::size_t* files_scanned,
                               unsigned max_threads) {
  static constexpr std::string_view kDirs[] = {"src", "bench", "tools", "examples",
                                               "tests"};
  std::vector<fs::path> sources;
  std::vector<std::string> labels;
  for (const std::string_view dir : kDirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext != ".cpp" && ext != ".hpp") continue;
      const std::string label = entry.path().lexically_relative(root).generic_string();
      // Fixture mini-trees carry real extensions so lint_tree can be pointed
      // AT them by the self-tests; the live scan must never descend into
      // them. (Flat fixtures additionally use .cc, which is not picked up.)
      if (label.find("lint_fixtures/") != std::string::npos) continue;
      sources.push_back(entry.path());
    }
  }
  // Sort by label so findings and analyses are ordered the same way on
  // every platform regardless of directory iteration order.
  std::vector<std::size_t> order(sources.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(sources.begin(), sources.end());
  labels.reserve(sources.size());
  for (const fs::path& source : sources)
    labels.push_back(source.lexically_relative(root).generic_string());
  if (files_scanned != nullptr) *files_scanned = sources.size();

  // Per-file analysis is embarrassingly parallel; results land in
  // index-keyed slots so the merge below is deterministic.
  std::vector<FileAnalysis> analyses(sources.size());
  util::parallel_for(
      sources.size(),
      [&](std::size_t i) {
        analyses[i] = analyze_source(labels[i], read_file(sources[i]));
      },
      max_threads);

  std::vector<Finding> findings;
  for (FileAnalysis& analysis : analyses)
    findings.insert(findings.end(),
                    std::make_move_iterator(analysis.findings.begin()),
                    std::make_move_iterator(analysis.findings.end()));
  std::vector<Finding> cross = cross_file_rules(analyses, &root);
  findings.insert(findings.end(), std::make_move_iterator(cross.begin()),
                  std::make_move_iterator(cross.end()));
  sort_findings(findings);
  return findings;
}

std::string format_text(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" + finding.rule +
         "] " + finding.message;
}

std::string format_github(const Finding& finding) {
  return "::error file=" + finding.file + ",line=" + std::to_string(finding.line) +
         ",title=locpriv-lint(" + finding.rule + ")::" + finding.message;
}

std::string format_json(const std::vector<Finding>& findings,
                        std::size_t files_scanned) {
  util::JsonWriter json;
  json.begin_object();
  json.member("files_scanned", static_cast<std::uint64_t>(files_scanned));
  json.key("findings");
  json.begin_array();
  for (const Finding& finding : findings) {
    json.begin_object();
    json.member("file", finding.file);
    json.member("line", static_cast<std::uint64_t>(finding.line));
    json.member("rule", finding.rule);
    json.member("message", finding.message);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::string rules_json() {
  util::JsonWriter json;
  json.begin_array();
  for (const RuleInfo& rule : rules()) {
    json.begin_object();
    json.member("name", rule.name);
    json.member("summary", rule.summary);
    json.end_object();
  }
  json.end_array();
  return json.str();
}

}  // namespace locpriv::lint
