#include "report_command.hpp"

#include <ostream>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "market/catalog.hpp"
#include "market/study.hpp"
#include "trace/trace_stats.hpp"
#include "util/strings.hpp"

namespace locpriv::tools {

namespace {

void claim_row(std::ostream& out, const std::string& claim, const std::string& paper,
               const std::string& measured) {
  out << "| " << claim << " | " << paper << " | " << measured << " |\n";
}

}  // namespace

void write_reproduction_report(std::ostream& out, const ReportOptions& options) {
  out << "# locpriv reproduction report\n\n"
      << "Corpus: " << options.user_count << " users x " << options.days
      << " days (seed " << options.dataset_seed << "); catalog seed "
      << options.catalog_seed << ".\n\n";

  // ---- Section III ----------------------------------------------------
  market::CatalogConfig catalog_config;
  catalog_config.seed = options.catalog_seed;
  const auto market_report =
      market::run_market_study(market::generate_catalog(catalog_config), 7);

  out << "## Section III - market measurement\n\n"
      << "| claim | paper | measured |\n|---|---|---|\n";
  claim_row(out, "apps declaring a location permission", "1,137",
            std::to_string(market_report.declaring));
  claim_row(out, "apps that function to access location", "528",
            std::to_string(market_report.functional));
  claim_row(out, "apps accessing location in background", "102",
            std::to_string(market_report.background));
  claim_row(out, "background apps that auto-start", "85",
            std::to_string(market_report.background_auto));
  claim_row(out, "background apps using precise fixes", "68",
            std::to_string(market_report.background_precise));
  {
    int fast = 0;
    for (const auto interval : market_report.background_intervals)
      if (interval <= 10) ++fast;
    claim_row(out, "background apps updating within 10 s", "57.8%",
              util::format_percent(
                  static_cast<double>(fast) /
                      static_cast<double>(market_report.background_intervals.size()),
                  1));
  }

  // ---- Section IV -----------------------------------------------------
  mobility::DatasetConfig dataset;
  dataset.seed = options.dataset_seed;
  dataset.user_count = options.user_count;
  dataset.synthesis.days = options.days;
  const core::PrivacyAnalyzer analyzer =
      core::PrivacyAnalyzer::from_synthetic(core::experiment_analyzer_config(), dataset);
  const std::size_t users = analyzer.user_count();

  // Figure 3 anchors.
  std::size_t reference = 0;
  std::size_t recovered_10s = 0;
  std::size_t recovered_7200s = 0;
  for (std::size_t u = 0; u < users; ++u) {
    const auto fast = analyzer.evaluate_exposure(u, 10);
    const auto slow = analyzer.evaluate_exposure(u, 7200);
    reference += fast.poi_total.reference_count;
    recovered_10s += fast.poi_total.recovered_count;
    recovered_7200s += slow.poi_total.recovered_count;
  }

  // Figure 4 anchors.
  int p1_fast10 = 0;
  int p2_fast10 = 0;
  int p2_faster = 0;
  int p1_faster = 0;
  for (std::size_t u = 0; u < users; ++u) {
    const auto p1 = analyzer.earliest_identification(u, privacy::Pattern::kVisits, 1);
    const auto p2 =
        analyzer.earliest_identification(u, privacy::Pattern::kMovements, 1);
    if (p1.detected && p1.fraction <= 0.10) ++p1_fast10;
    if (p2.detected && p2.fraction <= 0.10) ++p2_fast10;
    if (p1.detected && p2.detected) {
      if (p2.fraction < p1.fraction) ++p2_faster;
      if (p1.fraction < p2.fraction) ++p1_faster;
    }
  }

  out << "\n## Section IV - privacy measurement\n\n"
      << "| claim | paper | measured |\n|---|---|---|\n";
  claim_row(out, "PoIs recoverable at 10 s polling", "~100%",
            util::format_percent(static_cast<double>(recovered_10s) /
                                     static_cast<double>(reference), 1));
  claim_row(out, "PoIs recoverable at 7,200 s polling", "~1.8%",
            util::format_percent(static_cast<double>(recovered_7200s) /
                                     static_cast<double>(reference), 1));
  claim_row(out, "users identified by pattern 2 with <=10% of profile", "~52%",
            util::format_percent(static_cast<double>(p2_fast10) /
                                     static_cast<double>(users), 1));
  claim_row(out, "users identified by pattern 1 with <=10% of profile", "~13%",
            util::format_percent(static_cast<double>(p1_fast10) /
                                     static_cast<double>(users), 1));
  claim_row(out, "pattern 2 faster : pattern 1 faster", "71 : 14",
            std::to_string(p2_faster) + " : " + std::to_string(p1_faster));

  out << "\nSee EXPERIMENTS.md for the full per-figure record and\n"
         "bench_* binaries to regenerate any row.\n";
}

}  // namespace locpriv::tools
