// locpriv — command-line front end for the library.
//
//   locpriv gen-dataset   --out DIR [--users N] [--days D] [--seed S]
//   locpriv dataset-stats --root DIR
//   locpriv market-study  [--csv FILE] [--summary-csv FILE] [--limits S] [--seed S]
//   locpriv extract-pois  --root DIR --user INDEX [--interval S] [--radius M]
//                         [--visit MIN]
//   locpriv audit         --root DIR --user INDEX [--interval S]
//   locpriv identify      --root DIR --user INDEX [--interval S] [--pattern 1|2]
//
// Dataset-consuming commands read a Geolife-layout directory (as produced
// by gen-dataset or a real Geolife download).
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>

#include "core/harness/atomic_file.hpp"
#include "core/harness/error.hpp"
#include "core/harness/supervisor.hpp"
#include "core/harness/sweep.hpp"

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "service/driver.hpp"
#include "service/locprivd.hpp"
#include "service/scrub.hpp"
#include "market/catalog.hpp"
#include "market/report_io.hpp"
#include "market/study.hpp"
#include "poi/geojson.hpp"
#include "report_command.hpp"
#include "mobility/synthesis.hpp"
#include "poi/clustering.hpp"
#include "trace/geolife.hpp"
#include "trace/sampling.hpp"
#include "trace/trace_stats.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace locpriv;

int usage() {
  std::cerr <<
      "usage: locpriv <command> [options]\n"
      "  gen-dataset   --out DIR [--users N] [--days D] [--seed S]\n"
      "  dataset-stats --root DIR [--lenient]\n"
      "  market-study  [--csv FILE] [--summary-csv FILE] [--limits S] [--seed S]\n"
      "  extract-pois  --root DIR --user INDEX [--interval S] [--radius M] [--visit MIN]\n"
      "                [--lenient]\n"
      "  audit         --root DIR --user INDEX [--interval S] [--lenient]\n"
      "  audit-all     --root DIR [--interval S] [--csv FILE] [--lenient]\n"
      "                [--run-dir DIR | --resume DIR] [--isolate] [--workers N]\n"
      "                [--cell-rlimit-mb N] [--cell-cpu-s N] [--cell-deadline S]\n"
      "                [--cell-retries N]\n"
      "  identify      --root DIR --user INDEX [--interval S] [--pattern 1|2] [--lenient]\n"
      "  export-geojson --root DIR --user INDEX --out FILE [--interval S]\n"
      "  report        [--out FILE] [--users N] [--days D]\n"
      "  serve         (--run-dir DIR | --resume DIR) [--root DIR | --users N --days D]\n"
      "                [--seed S] [--shards K] [--interval S] [--rounds N] [--batch N]\n"
      "                [--pace-ms MS] [--csv FILE] [--heartbeat-ms MS]\n"
      "                [--ping-timeout-ms MS] [--op-timeout-ms MS] [--grace-ms MS]\n"
      "                [--snapshot-every-ms MS] [--max-respawns N] [--backoff-ms MS]\n"
      "                [--shard-rlimit-mb N] [--shard-cpu-s N]\n"
      "                [--fault-shards SPEC] [--fault-after N]\n"
      "                [--max-inflight-batches N] [--max-retained-mb N]\n"
      "                [--shed-policy reject-new|drop-oldest] [--admit block|shed]\n"
      "                [--degraded-ms MS] [--slow-restart-ms MS]\n"
      "  scrub         RUN_DIR [--repair]\n"
      "\n"
      "scrub verifies a run directory offline: every ledger record against\n"
      "its CRC, every retained snapshot against its journaled checksum, and\n"
      "whether the directory would resume. --repair truncates a torn or\n"
      "corrupt ledger to its last intact record and unlinks snapshots the\n"
      "journal no longer vouches for. Exit 0 when pristine (or, with\n"
      "--repair, resumable after repair); exit 8 otherwise.\n"
      "\n"
      "serve runs the locprivd audit service: users are sharded across forked\n"
      "worker processes fed over pipes, supervised by heartbeat, snapshotted\n"
      "periodically, and respawned from their last snapshot on a crash or hang.\n"
      "SIGINT/SIGTERM drain every shard and exit 7; re-running with --resume\n"
      "continues from the journaled snapshots (a different --shards count is\n"
      "refused with exit 6). --fault-shards injects crash|hang|alloc faults,\n"
      "e.g. \"crash@shard0,hang:2@shard1\".\n"
      "\n"
      "Overload control: each shard acks applied batches; the parent stops\n"
      "encoding past --max-inflight-batches unacked batches and forces an\n"
      "early snapshot when retained replay bytes cross --max-retained-mb.\n"
      "--admit block (default) gives lossless backpressure; --admit shed\n"
      "sheds at the window edge per --shed-policy, with per-user\n"
      "offered/accepted/shed columns appended to the --csv rows and\n"
      "per-shard shed counters journaled to the ledger. --degraded-ms /\n"
      "--slow-restart-ms set turnaround-EWMA thresholds for out-of-band\n"
      "snapshots and slow-shard respawns.\n"
      "\n"
      "--lenient quarantines corrupt .plt files instead of aborting, prints the\n"
      "ingest report, and exits with code 3 when anything was quarantined.\n"
      "audit-all audits every user; with --isolate each user runs in a forked,\n"
      "rlimit-capped worker and a crashing user is retried, then quarantined.\n"
      "\n"
      "exit codes: 0 ok, 1 internal error, 2 usage, 3 quarantine (lenient ingest\n"
      "or supervised cells), 4 artifact I/O failure, 5 deadline exceeded,\n"
      "6 resume mismatch, 7 interrupted by SIGINT/SIGTERM (resumable),\n"
      "8 ledger corrupt (mid-file damage; recoverable with scrub --repair).\n"
      "File artifacts (--csv, --summary-csv, --out, gen-dataset) are written\n"
      "atomically: on failure the destination keeps its previous content.\n";
  return 2;
}

/// Exit code for a lenient run that had to quarantine files: the command
/// produced results, but the corpus was incomplete.
constexpr int kExitQuarantined = 3;

/// A dataset plus the ingest outcome the lenient commands report on.
struct LoadedDataset {
  std::vector<trace::UserTrace> users;
  trace::IngestReport report;
  bool lenient = false;
};

void print_ingest_report(const trace::IngestReport& report) {
  std::cerr << "ingest: " << report.files_scanned << " files scanned, "
            << report.files_loaded << " loaded, " << report.empty_files
            << " empty, " << report.quarantined.size() << " quarantined ("
            << report.users_loaded << " users, " << report.points_loaded
            << " fixes)\n";
  for (const auto& bad : report.quarantined)
    std::cerr << "  quarantined " << bad.path.string() << ": " << bad.error << '\n';
}

LoadedDataset load_dataset(const std::string& root, bool lenient) {
  LoadedDataset loaded;
  loaded.lenient = lenient;
  trace::ReadOptions options;
  options.lenient = lenient;
  loaded.users = trace::read_geolife_dataset(root, options, &loaded.report);
  if (lenient) print_ingest_report(loaded.report);
  if (loaded.users.empty()) throw std::runtime_error("no users found under " + root);
  return loaded;
}

/// Maps a command's own exit code through the quarantine signal.
int finish(int code, const LoadedDataset& loaded) {
  if (code == 0 && loaded.lenient && !loaded.report.clean()) return kExitQuarantined;
  return code;
}

int cmd_gen_dataset(int argc, const char* const* argv) {
  util::Args args;
  args.declare("--out", "");
  args.declare("--users", "12");
  args.declare("--days", "8");
  args.declare("--seed", std::to_string(core::kDatasetSeed));
  args.parse(argc, argv, 2);
  if (args.get("--out").empty()) return usage();

  mobility::DatasetConfig config;
  config.user_count = static_cast<int>(args.get_int("--users"));
  config.synthesis.days = static_cast<int>(args.get_int("--days"));
  config.seed = static_cast<std::uint64_t>(args.get_int("--seed"));
  const auto dataset = mobility::generate_dataset(config);
  trace::write_geolife_dataset(args.get("--out"), dataset.users);
  std::cout << "wrote " << dataset.users.size() << " users ("
            << trace::compute_dataset_stats(dataset.users).point_count
            << " fixes) to " << args.get("--out") << '\n';
  return 0;
}

int cmd_dataset_stats(int argc, const char* const* argv) {
  util::Args args;
  args.declare("--root", "");
  args.declare_bool("--lenient");
  args.parse(argc, argv, 2);
  if (args.get("--root").empty()) return usage();

  const auto loaded = load_dataset(args.get("--root"), args.get_bool("--lenient"));
  const auto stats = trace::compute_dataset_stats(loaded.users);
  util::ConsoleTable table({"metric", "value"});
  table.add_row({"users", std::to_string(stats.user_count)});
  table.add_row({"trajectories", std::to_string(stats.trajectory_count)});
  table.add_row({"fixes", std::to_string(stats.point_count)});
  table.add_row({"distance (km)", util::format_fixed(stats.total_length_km, 1)});
  table.add_row({"recorded hours", util::format_fixed(stats.total_duration_hours, 1)});
  table.add_row({"1-5 s interval share",
                 util::format_percent(stats.high_frequency_fraction, 1)});
  table.add_row({"median interval (s)", util::format_fixed(stats.median_interval_s, 1)});
  table.print(std::cout);
  return finish(0, loaded);
}

int cmd_market_study(int argc, const char* const* argv) {
  util::Args args;
  args.declare("--csv", "");
  args.declare("--summary-csv", "");
  args.declare("--limits", "0");
  args.declare("--seed", std::to_string(core::kCatalogSeed));
  args.parse(argc, argv, 2);

  market::CatalogConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("--seed"));
  const auto catalog = market::generate_catalog(config);
  const auto report =
      market::run_market_study(catalog, 7, args.get_int("--limits"));

  util::ConsoleTable table({"statistic", "value"});
  table.add_row({"declaring", std::to_string(report.declaring)});
  table.add_row({"functional", std::to_string(report.functional)});
  table.add_row({"background", std::to_string(report.background)});
  table.add_row({"background auto-start", std::to_string(report.background_auto)});
  table.add_row({"background precise", std::to_string(report.background_precise)});
  table.print(std::cout);

  if (!args.get("--csv").empty()) {
    harness::AtomicFileWriter out(args.get("--csv"));
    market::write_observations_csv(out.stream(), report);
    out.commit();
    std::cout << "observations -> " << args.get("--csv") << '\n';
  }
  if (!args.get("--summary-csv").empty()) {
    harness::AtomicFileWriter out(args.get("--summary-csv"));
    market::write_summary_csv(out.stream(), report);
    out.commit();
    std::cout << "summary -> " << args.get("--summary-csv") << '\n';
  }
  return 0;
}

int cmd_extract_pois(int argc, const char* const* argv) {
  util::Args args;
  args.declare("--root", "");
  args.declare("--user", "0");
  args.declare("--interval", "1");
  args.declare("--radius", "50");
  args.declare("--visit", "10");
  args.declare_bool("--lenient");
  args.parse(argc, argv, 2);
  if (args.get("--root").empty()) return usage();

  const auto loaded = load_dataset(args.get("--root"), args.get_bool("--lenient"));
  const auto& users = loaded.users;
  const auto user_index = static_cast<std::size_t>(args.get_int("--user"));
  if (user_index >= users.size()) throw std::runtime_error("user index out of range");

  poi::ExtractionParams params;
  params.radius_m = args.get_double("--radius");
  params.min_visit_s = args.get_int("--visit") * 60;

  auto points = users[user_index].flattened();
  if (args.get_int("--interval") > 1)
    points = trace::decimate(points, args.get_int("--interval"));
  const auto stays = poi::extract_stay_points(points, params);
  const auto pois = poi::cluster_stay_points(stays, params.radius_m);

  std::cout << points.size() << " fixes -> " << stays.size() << " stay points -> "
            << pois.size() << " PoIs\n\n";
  util::ConsoleTable table({"poi", "lat", "lon", "visits", "total dwell (min)"});
  for (const auto& poi : pois) {
    std::int64_t dwell = 0;
    for (const auto& visit : poi.visits) dwell += visit.duration_s();
    table.add_row({std::to_string(poi.id),
                   util::format_fixed(poi.centroid.lat_deg, 5),
                   util::format_fixed(poi.centroid.lon_deg, 5),
                   std::to_string(poi.visit_count()),
                   util::format_fixed(static_cast<double>(dwell) / 60.0, 0)});
  }
  table.print(std::cout);
  return finish(0, loaded);
}

int cmd_audit(int argc, const char* const* argv) {
  util::Args args;
  args.declare("--root", "");
  args.declare("--user", "0");
  args.declare("--interval", "60");
  args.declare_bool("--json");
  args.declare_bool("--lenient");
  args.parse(argc, argv, 2);
  if (args.get("--root").empty()) return usage();

  auto loaded = load_dataset(args.get("--root"), args.get_bool("--lenient"));
  const core::PrivacyAnalyzer analyzer(core::experiment_analyzer_config(),
                                       std::move(loaded.users));
  const auto user_index = static_cast<std::size_t>(args.get_int("--user"));
  if (user_index >= analyzer.user_count())
    throw std::runtime_error("user index out of range");
  const auto report =
      analyzer.evaluate_exposure(user_index, args.get_int("--interval"));

  if (args.get_bool("--json")) {
    util::JsonWriter json;
    json.begin_object();
    json.member("user", analyzer.reference(user_index).user_id);
    json.member("interval_s", report.interval_s);
    json.member("collected_fixes", static_cast<std::uint64_t>(report.collected_fixes));
    json.member("extracted_pois", static_cast<std::uint64_t>(report.extracted_pois));
    json.member("poi_total", report.poi_total.fraction());
    json.member("poi_sensitive", report.poi_sensitive.fraction());
    json.member("hisbin_visits", report.hisbin_visits);
    json.member("hisbin_movements", report.hisbin_movements);
    json.member("breach", report.breach_detected());
    json.member("deg_anonymity_movements", report.anonymity_movements);
    json.end_object();
    std::cout << json.str() << '\n';
    return finish(0, loaded);
  }

  util::ConsoleTable table({"metric", "value"});
  table.add_row({"collected fixes", std::to_string(report.collected_fixes)});
  table.add_row({"extracted PoIs", std::to_string(report.extracted_pois)});
  table.add_row({"PoI_total", util::format_percent(report.poi_total.fraction(), 1)});
  table.add_row(
      {"PoI_sensitive", util::format_percent(report.poi_sensitive.fraction(), 1)});
  table.add_row({"His_bin pattern 1", report.hisbin_visits ? "1" : "0"});
  table.add_row({"His_bin pattern 2", report.hisbin_movements ? "1" : "0"});
  table.add_row({"breach alert", report.breach_detected() ? "YES" : "no"});
  table.add_row(
      {"Deg_anonymity (p2)", util::format_fixed(report.anonymity_movements, 3)});
  table.print(std::cout);
  return finish(0, loaded);
}

/// Audits every user of the dataset, one supervised sweep cell per user.
/// With --run-dir/--resume the per-user results are journaled and the audit
/// is resumable; with --isolate each user's evaluation runs in a forked,
/// rlimit-capped child, so one pathological trace cannot take down the whole
/// audit — it is retried and finally quarantined (exit 3) with a structured
/// failure record while the other users complete.
int cmd_audit_all(int argc, const char* const* argv) {
  util::Args args;
  args.declare("--root", "");
  args.declare("--interval", "60");
  args.declare("--csv", "");
  args.declare_bool("--lenient");
  harness::declare_run_flags(args);
  args.parse(argc, argv, 2);
  if (args.get("--root").empty()) return usage();
  const harness::RunOptions options =
      harness::run_options_from(args, "audit-all");
  if (!options.active() &&
      (options.supervisor.isolate || options.supervisor.workers > 1))
    throw Error(ErrorCode::kUsage,
                "--isolate/--workers need a journal to report into; pass "
                "--run-dir or --resume");

  auto loaded = load_dataset(args.get("--root"), args.get_bool("--lenient"));
  const core::PrivacyAnalyzer analyzer(core::experiment_analyzer_config(),
                                       std::move(loaded.users));
  const auto interval_s = args.get_int("--interval");

  const std::vector<std::string> header = {
      "user", "interval_s", "collected_fixes", "extracted_pois", "poi_total",
      "poi_sensitive", "hisbin_visits", "hisbin_movements", "breach",
      "deg_anonymity_p2"};
  std::vector<std::string> cells;
  for (std::size_t i = 0; i < analyzer.user_count(); ++i)
    cells.push_back(analyzer.reference(i).user_id);

  const harness::CellFn cell_fn = [&](std::size_t index, const std::string& key,
                                      int /*attempt*/) {
    const auto report = analyzer.evaluate_exposure(index, interval_s);
    return std::vector<std::string>{
        key,
        std::to_string(interval_s),
        std::to_string(report.collected_fixes),
        std::to_string(report.extracted_pois),
        util::format_fixed(report.poi_total.fraction(), 4),
        util::format_fixed(report.poi_sensitive.fraction(), 4),
        report.hisbin_visits ? "1" : "0",
        report.hisbin_movements ? "1" : "0",
        report.breach_detected() ? "1" : "0",
        util::format_fixed(report.anonymity_movements, 4)};
  };

  const harness::RunInfo run_info{"audit-all", 0,
                                  std::to_string(analyzer.user_count()) + "u_t" +
                                      std::to_string(interval_s),
                                  options.mode_string()};
  const std::unique_ptr<harness::RunLedger> ledger =
      harness::open_ledger(options, run_info);

  std::vector<std::string> quarantined;
  std::vector<std::vector<std::string>> rows;
  if (ledger != nullptr) {
    harness::StageWatchdog watchdog(options.stage);
    watchdog.set_total(cells.size());
    watchdog.add_progress(ledger->completed_count());
    harness::Supervisor supervisor(options.supervisor);
    quarantined = supervisor.run(cells, cell_fn, *ledger, &watchdog).quarantined;
    for (const std::string& key : cells)
      if (const auto* fields = ledger->fields(key); fields != nullptr)
        rows.push_back(*fields);
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i)
      rows.push_back(cell_fn(i, cells[i], 1));
  }

  util::ConsoleTable table({"user", "fixes", "PoIs", "PoI_total", "PoI_sens",
                            "His_bin", "breach", "Deg_anon (p2)"});
  for (const auto& fields : rows)
    table.add_row({fields[0], fields[2], fields[3], fields[4], fields[5],
                   fields[6] + "/" + fields[7], fields[8] == "1" ? "YES" : "no",
                   fields[9]});
  table.print(std::cout);

  const auto write_csv = [&](std::ostream& out) {
    util::CsvWriter csv(out);
    csv.write_row(header);
    for (const auto& fields : rows) csv.write_row(fields);
  };
  if (!args.get("--csv").empty()) {
    harness::AtomicFileWriter out(args.get("--csv"));
    write_csv(out.stream());
    out.commit();
    std::cout << "audit table -> " << args.get("--csv") << '\n';
  }
  if (options.active()) {
    harness::AtomicFileWriter out(options.run_dir / "audit_all.csv");
    write_csv(out.stream());
    out.commit();
    std::cout << "(artifact -> " << (options.run_dir / "audit_all.csv").string()
              << ")\n";
  }

  if (!quarantined.empty()) {
    std::cerr << "quarantined users (" << quarantined.size() << "/"
              << cells.size() << "):\n";
    for (const std::string& key : quarantined) {
      std::cerr << "  " << key << '\n';
      if (const auto* details = ledger->quarantine_details(key);
          details != nullptr)
        for (const std::string& detail : *details)
          std::cerr << "    " << detail << '\n';
    }
    return kExitQuarantined;
  }
  return finish(0, loaded);
}

int cmd_identify(int argc, const char* const* argv) {
  util::Args args;
  args.declare("--root", "");
  args.declare("--user", "0");
  args.declare("--interval", "1");
  args.declare("--pattern", "2");
  args.declare_bool("--lenient");
  args.parse(argc, argv, 2);
  if (args.get("--root").empty()) return usage();

  auto loaded = load_dataset(args.get("--root"), args.get_bool("--lenient"));
  const core::PrivacyAnalyzer analyzer(core::experiment_analyzer_config(),
                                       std::move(loaded.users));
  const auto user_index = static_cast<std::size_t>(args.get_int("--user"));
  if (user_index >= analyzer.user_count())
    throw std::runtime_error("user index out of range");
  const privacy::Pattern pattern = args.get_int("--pattern") == 1
                                       ? privacy::Pattern::kVisits
                                       : privacy::Pattern::kMovements;
  const auto outcome = analyzer.earliest_identification(user_index, pattern,
                                                        args.get_int("--interval"));
  if (outcome.detected) {
    std::cout << "user " << user_index << " uniquely identified after "
              << util::format_percent(outcome.fraction, 0) << " of the trace (pattern "
              << args.get("--pattern") << ", interval " << args.get("--interval")
              << " s)\n";
  } else {
    std::cout << "user " << user_index << " was not uniquely identified (pattern "
              << args.get("--pattern") << ", interval " << args.get("--interval")
              << " s)\n";
  }
  return finish(0, loaded);
}

int cmd_export_geojson(int argc, const char* const* argv) {
  util::Args args;
  args.declare("--root", "");
  args.declare("--user", "0");
  args.declare("--out", "");
  args.declare("--interval", "1");
  args.parse(argc, argv, 2);
  if (args.get("--root").empty() || args.get("--out").empty()) return usage();

  const auto loaded = load_dataset(args.get("--root"), /*lenient=*/false);
  const auto& users = loaded.users;
  const auto user_index = static_cast<std::size_t>(args.get_int("--user"));
  if (user_index >= users.size()) throw std::runtime_error("user index out of range");

  auto points = users[user_index].flattened();
  if (args.get_int("--interval") > 1)
    points = trace::decimate(points, args.get_int("--interval"));
  const poi::ExtractionParams params;
  const auto stays = poi::extract_stay_points(points, params);
  const auto pois = poi::cluster_stay_points(stays, params.radius_m);

  harness::AtomicFileWriter out(args.get("--out"));
  out.stream() << poi::to_geojson(users[user_index], pois);
  out.commit();
  std::cout << "wrote " << users[user_index].trajectories.size()
            << " trajectories and " << pois.size() << " PoIs to "
            << args.get("--out") << '\n';
  return 0;
}

int cmd_serve(int argc, const char* const* argv) {
  util::Args args;
  args.declare("--root", "");
  args.declare("--users", "6");
  args.declare("--days", "3");
  args.declare("--seed", std::to_string(core::kDatasetSeed));
  args.declare("--run-dir", "");
  args.declare("--resume", "");
  args.declare("--shards", "2");
  args.declare("--interval", "60");
  args.declare("--rounds", "1");
  args.declare("--batch", "64");
  args.declare("--pace-ms", "0");
  args.declare("--csv", "");
  args.declare("--heartbeat-ms", "200");
  args.declare("--ping-timeout-ms", "5000");
  args.declare("--op-timeout-ms", "120000");
  args.declare("--grace-ms", "2000");
  args.declare("--snapshot-every-ms", "2000");
  args.declare("--max-respawns", "5");
  args.declare("--backoff-ms", "100");
  args.declare("--shard-rlimit-mb", "0");
  args.declare("--shard-cpu-s", "0");
  args.declare("--fault-shards", "");
  args.declare("--fault-after", "3");
  args.declare("--max-inflight-batches", "64");
  args.declare("--max-retained-mb", "64");
  args.declare("--shed-policy", "reject-new");
  args.declare("--admit", "block");
  args.declare("--degraded-ms", "0");
  args.declare("--slow-restart-ms", "0");
  args.declare_bool("--lenient");
  args.parse(argc, argv, 2);

  const bool resume = !args.get("--resume").empty();
  if (resume == !args.get("--run-dir").empty())
    throw Error(ErrorCode::kUsage,
                "serve needs exactly one of --run-dir (fresh) or --resume");
  const std::string run_dir =
      resume ? args.get("--resume") : args.get("--run-dir");

  // The corpus: a Geolife-layout directory, or the synthetic dataset (the
  // soak default — deterministic, so a resumed serve replays identically).
  std::unique_ptr<core::PrivacyAnalyzer> analyzer;
  if (!args.get("--root").empty()) {
    auto loaded = load_dataset(args.get("--root"), args.get_bool("--lenient"));
    analyzer = std::make_unique<core::PrivacyAnalyzer>(
        core::experiment_analyzer_config(), std::move(loaded.users));
  } else {
    mobility::DatasetConfig dataset;
    dataset.user_count = static_cast<int>(args.get_int("--users"));
    dataset.synthesis.days = static_cast<int>(args.get_int("--days"));
    dataset.seed = static_cast<std::uint64_t>(args.get_int("--seed"));
    analyzer = std::make_unique<core::PrivacyAnalyzer>(
        core::PrivacyAnalyzer::from_synthetic(core::experiment_analyzer_config(),
                                              dataset));
  }

  service::ServiceOptions options;
  options.shards = static_cast<unsigned>(args.get_int("--shards"));
  options.interval_s = args.get_int("--interval");
  options.seed = static_cast<std::uint64_t>(args.get_int("--seed"));
  options.scale = std::to_string(analyzer->user_count()) + "u_t" +
                  std::to_string(options.interval_s);
  options.heartbeat = std::chrono::milliseconds(args.get_int("--heartbeat-ms"));
  options.ping_timeout =
      std::chrono::milliseconds(args.get_int("--ping-timeout-ms"));
  options.op_timeout =
      std::chrono::milliseconds(args.get_int("--op-timeout-ms"));
  options.term_grace = std::chrono::milliseconds(args.get_int("--grace-ms"));
  options.snapshot_interval =
      std::chrono::milliseconds(args.get_int("--snapshot-every-ms"));
  options.max_respawns = static_cast<int>(args.get_int("--max-respawns"));
  options.backoff_base = std::chrono::milliseconds(args.get_int("--backoff-ms"));
  options.backoff_seed = options.seed;
  options.shard_rlimit_mb =
      static_cast<std::size_t>(args.get_int("--shard-rlimit-mb"));
  options.shard_cpu_s = static_cast<unsigned>(args.get_int("--shard-cpu-s"));
  if (!args.get("--fault-shards").empty())
    options.fault_plan = sim::ProcessFaultPlan::parse(args.get("--fault-shards"));
  options.fault_after_batches = static_cast<int>(args.get_int("--fault-after"));
  options.max_inflight_batches =
      static_cast<std::size_t>(args.get_int("--max-inflight-batches"));
  options.max_retained_bytes =
      static_cast<std::size_t>(args.get_int("--max-retained-mb")) * 1024 * 1024;
  if (args.get("--shed-policy") == "reject-new") {
    options.shed_policy = service::ShedPolicy::kRejectNew;
  } else if (args.get("--shed-policy") == "drop-oldest") {
    options.shed_policy = service::ShedPolicy::kDropOldest;
  } else {
    throw Error(ErrorCode::kUsage,
                "--shed-policy must be reject-new or drop-oldest");
  }
  options.degraded_ms = std::chrono::milliseconds(args.get_int("--degraded-ms"));
  options.slow_restart_ms =
      std::chrono::milliseconds(args.get_int("--slow-restart-ms"));

  service::TrafficOptions traffic;
  traffic.batch_size = static_cast<std::size_t>(args.get_int("--batch"));
  traffic.rounds = static_cast<int>(args.get_int("--rounds"));
  traffic.pace = std::chrono::milliseconds(args.get_int("--pace-ms"));
  if (args.get("--admit") == "shed") {
    traffic.may_shed = true;
  } else if (args.get("--admit") != "block") {
    throw Error(ErrorCode::kUsage, "--admit must be block or shed");
  }

  service::LocprivService::clear_shutdown();
  std::signal(SIGINT, service::LocprivService::request_shutdown);
  std::signal(SIGTERM, service::LocprivService::request_shutdown);

  service::LocprivService daemon(options, *analyzer, run_dir, resume);
  const service::TrafficOutcome outcome = service::drive_traffic(
      daemon, *analyzer, traffic,
      [] { return service::LocprivService::shutdown_requested(); });

  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  if (outcome.interrupted) {
    daemon.drain();
    throw Error(ErrorCode::kInterrupted,
                "serve interrupted after " +
                    std::to_string(outcome.accepted) +
                    " accepted batches; drained, resume with --resume " +
                    run_dir);
  }

  const auto rows = daemon.collect_reports();
  const std::vector<std::string> header = {
      "user", "interval_s", "collected_fixes", "extracted_pois", "poi_total",
      "poi_sensitive", "hisbin_visits", "hisbin_movements", "breach",
      "deg_anonymity_p2", "batches_offered", "batches_accepted",
      "batches_shed"};
  // Shed accounting rides along as extra columns so the CSV alone shows
  // which users' metrics are complete (shed == 0) and reconciles
  // offered == accepted + shed per user.
  const auto& loads = daemon.user_loads();
  auto annotate = [&loads](std::vector<std::string> row) {
    const auto it = row.empty() ? loads.end() : loads.find(row.front());
    if (it != loads.end()) {
      row.push_back(std::to_string(it->second.batches_offered));
      row.push_back(std::to_string(it->second.batches_accepted));
      row.push_back(std::to_string(it->second.batches_shed));
    } else {
      row.insert(row.end(), {"0", "0", "0"});
    }
    return row;
  };
  if (!args.get("--csv").empty()) {
    harness::AtomicFileWriter out(args.get("--csv"));
    util::CsvWriter csv(out.stream());
    csv.write_row(header);
    for (const auto& row : rows) csv.write_row(annotate(row));
    out.commit();
    std::cerr << "audit rows -> " << args.get("--csv") << '\n';
  } else {
    util::CsvWriter csv(std::cout);
    csv.write_row(header);
    for (const auto& row : rows) csv.write_row(annotate(row));
  }
  daemon.drain();

  const service::ServiceStats& stats = daemon.stats();
  std::cerr << "serve: " << stats.batches_offered << " batches offered, "
            << stats.batches_submitted << " accepted ("
            << stats.fixes_submitted << " fixes), " << stats.batches_shed
            << " shed across " << daemon.options().shards << " shards, "
            << stats.snapshots << " snapshots (" << stats.forced_snapshots
            << " forced), " << stats.shard_deaths << " deaths, "
            << stats.respawns << " respawns\n";
  const auto quarantined = daemon.quarantined_shards();
  for (const auto& name : quarantined)
    std::cerr << "  quarantined: " << name << '\n';
  return quarantined.empty() ? 0 : kExitQuarantined;
}

int cmd_scrub(int argc, const char* const* argv) {
  util::Args args;
  args.declare_bool("--repair");
  args.parse(argc, argv, 2);
  if (args.positional().size() != 1) return usage();
  const bool repair = args.get_bool("--repair");
  const service::ScrubReport report =
      service::scrub_run_dir(args.positional().front(), repair);

  std::cerr << "ledger: "
            << (report.ledger_status == harness::LedgerScan::kClean
                    ? "clean"
                    : report.ledger_status == harness::LedgerScan::kTorn
                          ? "torn tail"
                          : "corrupt at line " +
                                std::to_string(report.ledger_bad_line))
            << ", " << report.ledger_records << " records intact ("
            << report.ledger_valid_bytes << " bytes)\n";
  for (const auto& check : report.snapshots)
    std::cerr << "snapshot " << check.cell << ": " << check.detail << '\n';
  for (const auto& action : report.repairs) std::cerr << "repair: " << action << '\n';
  std::cerr << "resumable: " << (report.resumable ? "yes" : "no") << '\n';

  // Verify mode flags any damage; repair mode succeeds when the directory
  // came out (or already was) resumable.
  const bool ok = repair ? report.resumable : report.clean() && report.resumable;
  return ok ? 0 : exit_code(ErrorCode::kLedgerCorrupt);
}

int cmd_report(int argc, const char* const* argv) {
  util::Args args;
  args.declare("--out", "");
  args.declare("--users", "40");
  args.declare("--days", "8");
  args.parse(argc, argv, 2);

  tools::ReportOptions options;
  options.user_count = static_cast<int>(args.get_int("--users"));
  options.days = static_cast<int>(args.get_int("--days"));
  if (args.get("--out").empty()) {
    tools::write_reproduction_report(std::cout, options);
    return 0;
  }
  harness::AtomicFileWriter out(args.get("--out"));
  tools::write_reproduction_report(out.stream(), options);
  out.commit();
  std::cout << "report -> " << args.get("--out") << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "gen-dataset") return cmd_gen_dataset(argc, argv);
    if (command == "dataset-stats") return cmd_dataset_stats(argc, argv);
    if (command == "market-study") return cmd_market_study(argc, argv);
    if (command == "extract-pois") return cmd_extract_pois(argc, argv);
    if (command == "audit") return cmd_audit(argc, argv);
    if (command == "audit-all") return cmd_audit_all(argc, argv);
    if (command == "identify") return cmd_identify(argc, argv);
    if (command == "export-geojson") return cmd_export_geojson(argc, argv);
    if (command == "report") return cmd_report(argc, argv);
    if (command == "serve") return cmd_serve(argc, argv);
    if (command == "scrub") return cmd_scrub(argc, argv);
  } catch (const Error& error) {
    // Harness failures carry their own exit code (4 I/O, 5 deadline, ...),
    // so scripts can distinguish a full disk from a bad user index.
    std::cerr << "error: " << error.what() << '\n';
    return error.exit_code();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return exit_code(ErrorCode::kInternal);
  }
  std::cerr << "unknown command: " << command << "\n";
  return usage();
}
