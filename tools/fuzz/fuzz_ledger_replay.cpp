// libFuzzer harness for the run-ledger replay scanner. replay_ledger() is
// the single parser every consumer of ledger bytes trusts — RunLedger's
// open path, the scrubber, and locprivd's resume — and it is documented as
// pure and non-throwing: damage surfaces in the status field, never as an
// exception or a crash. The harness feeds arbitrary bytes and enforces:
//   - no crash/UB and no exception on any input (torn tails, CRC'd garbage,
//     interior corruption, binary noise);
//   - valid_bytes never exceeds the input and always ends on a line
//     boundary (it is what a repair truncates to);
//   - kCorrupt always names a bad line inside the scanned range;
//   - the intact prefix is a fixed point: replaying content[0, valid_bytes)
//     must come back kClean with the identical cell view, or a repair that
//     truncates to it would not actually repair.
// Build with -DLOCPRIV_FUZZ=ON (clang); see tools/fuzz/CMakeLists.txt.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "core/harness/run_ledger.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace harness = locpriv::harness;
  const std::string_view content(reinterpret_cast<const char*>(data), size);
  const harness::LedgerReplay replay = harness::replay_ledger(content);

  if (replay.valid_bytes > size) __builtin_trap();
  if (replay.valid_bytes > 0 && content[replay.valid_bytes - 1] != '\n')
    __builtin_trap();
  if (replay.status == harness::LedgerScan::kCorrupt &&
      (replay.bad_line == 0 || replay.bad_line > replay.lines + 1))
    __builtin_trap();
  if (replay.status == harness::LedgerScan::kClean &&
      replay.valid_bytes != size)
    __builtin_trap();

  const harness::LedgerReplay again = harness::replay_ledger(
      content.substr(0, static_cast<std::size_t>(replay.valid_bytes)));
  if (again.status != harness::LedgerScan::kClean ||
      again.valid_bytes != replay.valid_bytes ||
      again.cells != replay.cells || again.has_header != replay.has_header)
    __builtin_trap();
  return 0;
}
