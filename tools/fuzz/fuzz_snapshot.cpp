// libFuzzer harness for the shard snapshot parser. Snapshots are the
// failover path's source of truth: a resumed or respawned shard trusts
// parse_snapshot() to either load exact state or throw Error(kResume) — the
// one non-crash rejection channel. The harness feeds arbitrary bytes and
// enforces:
//   - no crash/UB on any input (the fuzzer's own check);
//   - rejection only ever surfaces as locpriv::Error (anything else would
//     bypass the resume fallback in locprivd);
//   - accepted input round-trips: re-encoding the parsed snapshot yields
//     bytes the parser accepts again with identical topline state.
// Build with -DLOCPRIV_FUZZ=ON (clang); see tools/fuzz/CMakeLists.txt.
#include <cstddef>
#include <cstdint>
#include <string>

#include "core/harness/error.hpp"
#include "service/snapshot.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace service = locpriv::service;
  const std::string encoded(reinterpret_cast<const char*>(data), size);
  try {
    const service::ShardSnapshot snapshot = service::parse_snapshot(encoded);
    const std::string reencoded = service::encode_snapshot(snapshot);
    const service::ShardSnapshot again = service::parse_snapshot(reencoded);
    if (again.shard != snapshot.shard || again.seq != snapshot.seq ||
        again.last_seq != snapshot.last_seq ||
        again.users.size() != snapshot.users.size() ||
        again.fix_count() != snapshot.fix_count())
      __builtin_trap();
  } catch (const locpriv::Error&) {
    // Corrupt bytes must land here — the resume fallback's contract.
  }
  return 0;
}
