// libFuzzer harness for the locprivd wire FrameDecoder. The decoder sits
// directly on the shard pipes, so every byte a (possibly dying, possibly
// wedged) child writes reaches it unfiltered: arbitrary lengths, torn
// frames, garbage after a kill. The harness replays fuzz input as a chunked
// stream (chunk size derived from the first byte, so minimization explores
// reassembly boundaries) and checks two invariants on top of
// "never crash":
//   - anything the decoder accepts must round-trip bit-exactly through
//     encode_message() and a fresh decoder;
//   - once corrupt() latches, next() must stay false forever.
// Build with -DLOCPRIV_FUZZ=ON (clang); see tools/fuzz/CMakeLists.txt.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "service/wire.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace wire = locpriv::service::wire;
  if (size == 0) return 0;
  const std::size_t chunk = static_cast<std::size_t>(data[0] % 31) + 1;

  wire::FrameDecoder decoder;
  std::vector<std::string> fields;
  std::size_t offset = 1;
  while (offset < size) {
    const std::size_t n = std::min(chunk, size - offset);
    decoder.feed(reinterpret_cast<const char*>(data) + offset, n);
    offset += n;
    while (decoder.next(fields)) {
      // Round trip: a decoded message re-encodes to a stream a fresh
      // decoder parses back to the identical field vector.
      const std::string again = wire::encode_message(fields);
      wire::FrameDecoder check;
      check.feed(again.data(), again.size());
      std::vector<std::string> reparsed;
      if (!check.next(reparsed) || reparsed != fields || check.corrupt())
        __builtin_trap();
    }
    if (decoder.corrupt()) {
      // A poisoned stream must stay poisoned: more bytes, no more frames.
      decoder.feed(reinterpret_cast<const char*>(data), std::min(size, n));
      if (decoder.next(fields)) __builtin_trap();
      break;
    }
  }
  return 0;
}
