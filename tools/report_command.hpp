// The `locpriv report` subcommand: runs a compact end-to-end reproduction
// (market campaign at full scale — it is cheap — and the privacy pipeline
// at a caller-chosen corpus size) and writes a Markdown report of paper
// claims vs measured values.
#pragma once

#include <cstdint>
#include <iosfwd>

namespace locpriv::tools {

struct ReportOptions {
  int user_count = 40;
  int days = 8;
  std::uint64_t dataset_seed = 20170605;
  std::uint64_t catalog_seed = 20170301;
};

/// Runs the reproduction and writes the Markdown report to `out`.
void write_reproduction_report(std::ostream& out, const ReportOptions& options);

}  // namespace locpriv::tools
