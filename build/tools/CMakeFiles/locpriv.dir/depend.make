# Empty dependencies file for locpriv.
# This may be replaced when dependencies are built.
