file(REMOVE_RECURSE
  "CMakeFiles/locpriv.dir/locpriv_cli.cpp.o"
  "CMakeFiles/locpriv.dir/locpriv_cli.cpp.o.d"
  "CMakeFiles/locpriv.dir/report_command.cpp.o"
  "CMakeFiles/locpriv.dir/report_command.cpp.o.d"
  "locpriv"
  "locpriv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locpriv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
