
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lppm/defense.cpp" "src/lppm/CMakeFiles/locpriv_lppm.dir/defense.cpp.o" "gcc" "src/lppm/CMakeFiles/locpriv_lppm.dir/defense.cpp.o.d"
  "/root/repo/src/lppm/policy.cpp" "src/lppm/CMakeFiles/locpriv_lppm.dir/policy.cpp.o" "gcc" "src/lppm/CMakeFiles/locpriv_lppm.dir/policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/locpriv_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/locpriv_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/locpriv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/locpriv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
