file(REMOVE_RECURSE
  "CMakeFiles/locpriv_lppm.dir/defense.cpp.o"
  "CMakeFiles/locpriv_lppm.dir/defense.cpp.o.d"
  "CMakeFiles/locpriv_lppm.dir/policy.cpp.o"
  "CMakeFiles/locpriv_lppm.dir/policy.cpp.o.d"
  "liblocpriv_lppm.a"
  "liblocpriv_lppm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locpriv_lppm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
