file(REMOVE_RECURSE
  "CMakeFiles/locpriv_core.dir/analyzer.cpp.o"
  "CMakeFiles/locpriv_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/locpriv_core.dir/defense_eval.cpp.o"
  "CMakeFiles/locpriv_core.dir/defense_eval.cpp.o.d"
  "CMakeFiles/locpriv_core.dir/experiment.cpp.o"
  "CMakeFiles/locpriv_core.dir/experiment.cpp.o.d"
  "liblocpriv_core.a"
  "liblocpriv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locpriv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
