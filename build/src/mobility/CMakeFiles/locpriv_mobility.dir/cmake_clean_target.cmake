file(REMOVE_RECURSE
  "liblocpriv_mobility.a"
)
