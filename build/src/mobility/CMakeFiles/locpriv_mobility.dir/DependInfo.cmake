
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/city.cpp" "src/mobility/CMakeFiles/locpriv_mobility.dir/city.cpp.o" "gcc" "src/mobility/CMakeFiles/locpriv_mobility.dir/city.cpp.o.d"
  "/root/repo/src/mobility/profile.cpp" "src/mobility/CMakeFiles/locpriv_mobility.dir/profile.cpp.o" "gcc" "src/mobility/CMakeFiles/locpriv_mobility.dir/profile.cpp.o.d"
  "/root/repo/src/mobility/synthesis.cpp" "src/mobility/CMakeFiles/locpriv_mobility.dir/synthesis.cpp.o" "gcc" "src/mobility/CMakeFiles/locpriv_mobility.dir/synthesis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/locpriv_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/locpriv_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/locpriv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/locpriv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
