# Empty dependencies file for locpriv_mobility.
# This may be replaced when dependencies are built.
