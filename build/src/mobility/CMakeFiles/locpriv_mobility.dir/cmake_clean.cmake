file(REMOVE_RECURSE
  "CMakeFiles/locpriv_mobility.dir/city.cpp.o"
  "CMakeFiles/locpriv_mobility.dir/city.cpp.o.d"
  "CMakeFiles/locpriv_mobility.dir/profile.cpp.o"
  "CMakeFiles/locpriv_mobility.dir/profile.cpp.o.d"
  "CMakeFiles/locpriv_mobility.dir/synthesis.cpp.o"
  "CMakeFiles/locpriv_mobility.dir/synthesis.cpp.o.d"
  "liblocpriv_mobility.a"
  "liblocpriv_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locpriv_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
