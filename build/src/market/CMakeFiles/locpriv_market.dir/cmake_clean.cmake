file(REMOVE_RECURSE
  "CMakeFiles/locpriv_market.dir/analysis.cpp.o"
  "CMakeFiles/locpriv_market.dir/analysis.cpp.o.d"
  "CMakeFiles/locpriv_market.dir/catalog.cpp.o"
  "CMakeFiles/locpriv_market.dir/catalog.cpp.o.d"
  "CMakeFiles/locpriv_market.dir/categories.cpp.o"
  "CMakeFiles/locpriv_market.dir/categories.cpp.o.d"
  "CMakeFiles/locpriv_market.dir/report_io.cpp.o"
  "CMakeFiles/locpriv_market.dir/report_io.cpp.o.d"
  "CMakeFiles/locpriv_market.dir/study.cpp.o"
  "CMakeFiles/locpriv_market.dir/study.cpp.o.d"
  "liblocpriv_market.a"
  "liblocpriv_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locpriv_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
