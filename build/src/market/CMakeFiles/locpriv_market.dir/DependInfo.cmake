
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/analysis.cpp" "src/market/CMakeFiles/locpriv_market.dir/analysis.cpp.o" "gcc" "src/market/CMakeFiles/locpriv_market.dir/analysis.cpp.o.d"
  "/root/repo/src/market/catalog.cpp" "src/market/CMakeFiles/locpriv_market.dir/catalog.cpp.o" "gcc" "src/market/CMakeFiles/locpriv_market.dir/catalog.cpp.o.d"
  "/root/repo/src/market/categories.cpp" "src/market/CMakeFiles/locpriv_market.dir/categories.cpp.o" "gcc" "src/market/CMakeFiles/locpriv_market.dir/categories.cpp.o.d"
  "/root/repo/src/market/report_io.cpp" "src/market/CMakeFiles/locpriv_market.dir/report_io.cpp.o" "gcc" "src/market/CMakeFiles/locpriv_market.dir/report_io.cpp.o.d"
  "/root/repo/src/market/study.cpp" "src/market/CMakeFiles/locpriv_market.dir/study.cpp.o" "gcc" "src/market/CMakeFiles/locpriv_market.dir/study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/android/CMakeFiles/locpriv_android.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/locpriv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/locpriv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/locpriv_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/locpriv_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
