file(REMOVE_RECURSE
  "liblocpriv_market.a"
)
