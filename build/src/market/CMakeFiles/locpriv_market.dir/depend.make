# Empty dependencies file for locpriv_market.
# This may be replaced when dependencies are built.
