file(REMOVE_RECURSE
  "liblocpriv_util.a"
)
