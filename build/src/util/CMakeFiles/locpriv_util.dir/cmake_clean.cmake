file(REMOVE_RECURSE
  "CMakeFiles/locpriv_util.dir/args.cpp.o"
  "CMakeFiles/locpriv_util.dir/args.cpp.o.d"
  "CMakeFiles/locpriv_util.dir/csv.cpp.o"
  "CMakeFiles/locpriv_util.dir/csv.cpp.o.d"
  "CMakeFiles/locpriv_util.dir/json.cpp.o"
  "CMakeFiles/locpriv_util.dir/json.cpp.o.d"
  "CMakeFiles/locpriv_util.dir/logging.cpp.o"
  "CMakeFiles/locpriv_util.dir/logging.cpp.o.d"
  "CMakeFiles/locpriv_util.dir/parallel.cpp.o"
  "CMakeFiles/locpriv_util.dir/parallel.cpp.o.d"
  "CMakeFiles/locpriv_util.dir/strings.cpp.o"
  "CMakeFiles/locpriv_util.dir/strings.cpp.o.d"
  "CMakeFiles/locpriv_util.dir/table.cpp.o"
  "CMakeFiles/locpriv_util.dir/table.cpp.o.d"
  "liblocpriv_util.a"
  "liblocpriv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locpriv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
