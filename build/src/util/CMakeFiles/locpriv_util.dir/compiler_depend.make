# Empty compiler generated dependencies file for locpriv_util.
# This may be replaced when dependencies are built.
