file(REMOVE_RECURSE
  "CMakeFiles/locpriv_geo.dir/geodesy.cpp.o"
  "CMakeFiles/locpriv_geo.dir/geodesy.cpp.o.d"
  "CMakeFiles/locpriv_geo.dir/projection.cpp.o"
  "CMakeFiles/locpriv_geo.dir/projection.cpp.o.d"
  "liblocpriv_geo.a"
  "liblocpriv_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locpriv_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
