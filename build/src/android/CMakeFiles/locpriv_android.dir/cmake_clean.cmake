file(REMOVE_RECURSE
  "CMakeFiles/locpriv_android.dir/device.cpp.o"
  "CMakeFiles/locpriv_android.dir/device.cpp.o.d"
  "CMakeFiles/locpriv_android.dir/dumpsys.cpp.o"
  "CMakeFiles/locpriv_android.dir/dumpsys.cpp.o.d"
  "CMakeFiles/locpriv_android.dir/fused.cpp.o"
  "CMakeFiles/locpriv_android.dir/fused.cpp.o.d"
  "CMakeFiles/locpriv_android.dir/indicator.cpp.o"
  "CMakeFiles/locpriv_android.dir/indicator.cpp.o.d"
  "CMakeFiles/locpriv_android.dir/location.cpp.o"
  "CMakeFiles/locpriv_android.dir/location.cpp.o.d"
  "CMakeFiles/locpriv_android.dir/location_manager.cpp.o"
  "CMakeFiles/locpriv_android.dir/location_manager.cpp.o.d"
  "CMakeFiles/locpriv_android.dir/permissions.cpp.o"
  "CMakeFiles/locpriv_android.dir/permissions.cpp.o.d"
  "CMakeFiles/locpriv_android.dir/replay.cpp.o"
  "CMakeFiles/locpriv_android.dir/replay.cpp.o.d"
  "liblocpriv_android.a"
  "liblocpriv_android.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locpriv_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
