# Empty dependencies file for locpriv_android.
# This may be replaced when dependencies are built.
