
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/android/device.cpp" "src/android/CMakeFiles/locpriv_android.dir/device.cpp.o" "gcc" "src/android/CMakeFiles/locpriv_android.dir/device.cpp.o.d"
  "/root/repo/src/android/dumpsys.cpp" "src/android/CMakeFiles/locpriv_android.dir/dumpsys.cpp.o" "gcc" "src/android/CMakeFiles/locpriv_android.dir/dumpsys.cpp.o.d"
  "/root/repo/src/android/fused.cpp" "src/android/CMakeFiles/locpriv_android.dir/fused.cpp.o" "gcc" "src/android/CMakeFiles/locpriv_android.dir/fused.cpp.o.d"
  "/root/repo/src/android/indicator.cpp" "src/android/CMakeFiles/locpriv_android.dir/indicator.cpp.o" "gcc" "src/android/CMakeFiles/locpriv_android.dir/indicator.cpp.o.d"
  "/root/repo/src/android/location.cpp" "src/android/CMakeFiles/locpriv_android.dir/location.cpp.o" "gcc" "src/android/CMakeFiles/locpriv_android.dir/location.cpp.o.d"
  "/root/repo/src/android/location_manager.cpp" "src/android/CMakeFiles/locpriv_android.dir/location_manager.cpp.o" "gcc" "src/android/CMakeFiles/locpriv_android.dir/location_manager.cpp.o.d"
  "/root/repo/src/android/permissions.cpp" "src/android/CMakeFiles/locpriv_android.dir/permissions.cpp.o" "gcc" "src/android/CMakeFiles/locpriv_android.dir/permissions.cpp.o.d"
  "/root/repo/src/android/replay.cpp" "src/android/CMakeFiles/locpriv_android.dir/replay.cpp.o" "gcc" "src/android/CMakeFiles/locpriv_android.dir/replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/locpriv_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/locpriv_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/locpriv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/locpriv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
