file(REMOVE_RECURSE
  "liblocpriv_android.a"
)
