
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/filter.cpp" "src/trace/CMakeFiles/locpriv_trace.dir/filter.cpp.o" "gcc" "src/trace/CMakeFiles/locpriv_trace.dir/filter.cpp.o.d"
  "/root/repo/src/trace/geolife.cpp" "src/trace/CMakeFiles/locpriv_trace.dir/geolife.cpp.o" "gcc" "src/trace/CMakeFiles/locpriv_trace.dir/geolife.cpp.o.d"
  "/root/repo/src/trace/sampling.cpp" "src/trace/CMakeFiles/locpriv_trace.dir/sampling.cpp.o" "gcc" "src/trace/CMakeFiles/locpriv_trace.dir/sampling.cpp.o.d"
  "/root/repo/src/trace/trace_stats.cpp" "src/trace/CMakeFiles/locpriv_trace.dir/trace_stats.cpp.o" "gcc" "src/trace/CMakeFiles/locpriv_trace.dir/trace_stats.cpp.o.d"
  "/root/repo/src/trace/trajectory.cpp" "src/trace/CMakeFiles/locpriv_trace.dir/trajectory.cpp.o" "gcc" "src/trace/CMakeFiles/locpriv_trace.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/locpriv_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/locpriv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/locpriv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
