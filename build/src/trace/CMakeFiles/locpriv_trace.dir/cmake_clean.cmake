file(REMOVE_RECURSE
  "CMakeFiles/locpriv_trace.dir/filter.cpp.o"
  "CMakeFiles/locpriv_trace.dir/filter.cpp.o.d"
  "CMakeFiles/locpriv_trace.dir/geolife.cpp.o"
  "CMakeFiles/locpriv_trace.dir/geolife.cpp.o.d"
  "CMakeFiles/locpriv_trace.dir/sampling.cpp.o"
  "CMakeFiles/locpriv_trace.dir/sampling.cpp.o.d"
  "CMakeFiles/locpriv_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/locpriv_trace.dir/trace_stats.cpp.o.d"
  "CMakeFiles/locpriv_trace.dir/trajectory.cpp.o"
  "CMakeFiles/locpriv_trace.dir/trajectory.cpp.o.d"
  "liblocpriv_trace.a"
  "liblocpriv_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locpriv_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
