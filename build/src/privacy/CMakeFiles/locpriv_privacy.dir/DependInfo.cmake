
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/adversary.cpp" "src/privacy/CMakeFiles/locpriv_privacy.dir/adversary.cpp.o" "gcc" "src/privacy/CMakeFiles/locpriv_privacy.dir/adversary.cpp.o.d"
  "/root/repo/src/privacy/detection.cpp" "src/privacy/CMakeFiles/locpriv_privacy.dir/detection.cpp.o" "gcc" "src/privacy/CMakeFiles/locpriv_privacy.dir/detection.cpp.o.d"
  "/root/repo/src/privacy/inference.cpp" "src/privacy/CMakeFiles/locpriv_privacy.dir/inference.cpp.o" "gcc" "src/privacy/CMakeFiles/locpriv_privacy.dir/inference.cpp.o.d"
  "/root/repo/src/privacy/matching.cpp" "src/privacy/CMakeFiles/locpriv_privacy.dir/matching.cpp.o" "gcc" "src/privacy/CMakeFiles/locpriv_privacy.dir/matching.cpp.o.d"
  "/root/repo/src/privacy/metrics.cpp" "src/privacy/CMakeFiles/locpriv_privacy.dir/metrics.cpp.o" "gcc" "src/privacy/CMakeFiles/locpriv_privacy.dir/metrics.cpp.o.d"
  "/root/repo/src/privacy/pattern_histogram.cpp" "src/privacy/CMakeFiles/locpriv_privacy.dir/pattern_histogram.cpp.o" "gcc" "src/privacy/CMakeFiles/locpriv_privacy.dir/pattern_histogram.cpp.o.d"
  "/root/repo/src/privacy/prediction.cpp" "src/privacy/CMakeFiles/locpriv_privacy.dir/prediction.cpp.o" "gcc" "src/privacy/CMakeFiles/locpriv_privacy.dir/prediction.cpp.o.d"
  "/root/repo/src/privacy/reconstruction.cpp" "src/privacy/CMakeFiles/locpriv_privacy.dir/reconstruction.cpp.o" "gcc" "src/privacy/CMakeFiles/locpriv_privacy.dir/reconstruction.cpp.o.d"
  "/root/repo/src/privacy/region.cpp" "src/privacy/CMakeFiles/locpriv_privacy.dir/region.cpp.o" "gcc" "src/privacy/CMakeFiles/locpriv_privacy.dir/region.cpp.o.d"
  "/root/repo/src/privacy/topn.cpp" "src/privacy/CMakeFiles/locpriv_privacy.dir/topn.cpp.o" "gcc" "src/privacy/CMakeFiles/locpriv_privacy.dir/topn.cpp.o.d"
  "/root/repo/src/privacy/uniqueness.cpp" "src/privacy/CMakeFiles/locpriv_privacy.dir/uniqueness.cpp.o" "gcc" "src/privacy/CMakeFiles/locpriv_privacy.dir/uniqueness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/poi/CMakeFiles/locpriv_poi.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/locpriv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/locpriv_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/locpriv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/locpriv_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
