# Empty compiler generated dependencies file for locpriv_privacy.
# This may be replaced when dependencies are built.
