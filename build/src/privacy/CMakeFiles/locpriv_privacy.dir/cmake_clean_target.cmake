file(REMOVE_RECURSE
  "liblocpriv_privacy.a"
)
