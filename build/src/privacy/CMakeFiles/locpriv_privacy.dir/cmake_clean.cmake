file(REMOVE_RECURSE
  "CMakeFiles/locpriv_privacy.dir/adversary.cpp.o"
  "CMakeFiles/locpriv_privacy.dir/adversary.cpp.o.d"
  "CMakeFiles/locpriv_privacy.dir/detection.cpp.o"
  "CMakeFiles/locpriv_privacy.dir/detection.cpp.o.d"
  "CMakeFiles/locpriv_privacy.dir/inference.cpp.o"
  "CMakeFiles/locpriv_privacy.dir/inference.cpp.o.d"
  "CMakeFiles/locpriv_privacy.dir/matching.cpp.o"
  "CMakeFiles/locpriv_privacy.dir/matching.cpp.o.d"
  "CMakeFiles/locpriv_privacy.dir/metrics.cpp.o"
  "CMakeFiles/locpriv_privacy.dir/metrics.cpp.o.d"
  "CMakeFiles/locpriv_privacy.dir/pattern_histogram.cpp.o"
  "CMakeFiles/locpriv_privacy.dir/pattern_histogram.cpp.o.d"
  "CMakeFiles/locpriv_privacy.dir/prediction.cpp.o"
  "CMakeFiles/locpriv_privacy.dir/prediction.cpp.o.d"
  "CMakeFiles/locpriv_privacy.dir/reconstruction.cpp.o"
  "CMakeFiles/locpriv_privacy.dir/reconstruction.cpp.o.d"
  "CMakeFiles/locpriv_privacy.dir/region.cpp.o"
  "CMakeFiles/locpriv_privacy.dir/region.cpp.o.d"
  "CMakeFiles/locpriv_privacy.dir/topn.cpp.o"
  "CMakeFiles/locpriv_privacy.dir/topn.cpp.o.d"
  "CMakeFiles/locpriv_privacy.dir/uniqueness.cpp.o"
  "CMakeFiles/locpriv_privacy.dir/uniqueness.cpp.o.d"
  "liblocpriv_privacy.a"
  "liblocpriv_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locpriv_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
