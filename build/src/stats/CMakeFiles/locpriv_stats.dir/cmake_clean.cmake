file(REMOVE_RECURSE
  "CMakeFiles/locpriv_stats.dir/chi_square.cpp.o"
  "CMakeFiles/locpriv_stats.dir/chi_square.cpp.o.d"
  "CMakeFiles/locpriv_stats.dir/descriptive.cpp.o"
  "CMakeFiles/locpriv_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/locpriv_stats.dir/entropy.cpp.o"
  "CMakeFiles/locpriv_stats.dir/entropy.cpp.o.d"
  "CMakeFiles/locpriv_stats.dir/histogram.cpp.o"
  "CMakeFiles/locpriv_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/locpriv_stats.dir/ks_test.cpp.o"
  "CMakeFiles/locpriv_stats.dir/ks_test.cpp.o.d"
  "CMakeFiles/locpriv_stats.dir/rng.cpp.o"
  "CMakeFiles/locpriv_stats.dir/rng.cpp.o.d"
  "CMakeFiles/locpriv_stats.dir/special.cpp.o"
  "CMakeFiles/locpriv_stats.dir/special.cpp.o.d"
  "liblocpriv_stats.a"
  "liblocpriv_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locpriv_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
