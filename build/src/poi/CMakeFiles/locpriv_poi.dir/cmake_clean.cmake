file(REMOVE_RECURSE
  "CMakeFiles/locpriv_poi.dir/clustering.cpp.o"
  "CMakeFiles/locpriv_poi.dir/clustering.cpp.o.d"
  "CMakeFiles/locpriv_poi.dir/geojson.cpp.o"
  "CMakeFiles/locpriv_poi.dir/geojson.cpp.o.d"
  "CMakeFiles/locpriv_poi.dir/staypoint.cpp.o"
  "CMakeFiles/locpriv_poi.dir/staypoint.cpp.o.d"
  "liblocpriv_poi.a"
  "liblocpriv_poi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locpriv_poi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
