# Empty compiler generated dependencies file for locpriv_tests.
# This may be replaced when dependencies are built.
