
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/report_command.cpp" "tests/CMakeFiles/locpriv_tests.dir/__/tools/report_command.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/__/tools/report_command.cpp.o.d"
  "/root/repo/tests/android_limits_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/android_limits_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/android_limits_test.cpp.o.d"
  "/root/repo/tests/android_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/android_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/android_test.cpp.o.d"
  "/root/repo/tests/args_io_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/args_io_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/args_io_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/edge_cases_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/edge_cases_test.cpp.o.d"
  "/root/repo/tests/filter_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/filter_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/filter_test.cpp.o.d"
  "/root/repo/tests/geo_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/geo_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/geo_test.cpp.o.d"
  "/root/repo/tests/golden_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/golden_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/golden_test.cpp.o.d"
  "/root/repo/tests/inference_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/inference_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/inference_test.cpp.o.d"
  "/root/repo/tests/json_indicator_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/json_indicator_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/json_indicator_test.cpp.o.d"
  "/root/repo/tests/ks_regression_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/ks_regression_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/ks_regression_test.cpp.o.d"
  "/root/repo/tests/lppm_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/lppm_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/lppm_test.cpp.o.d"
  "/root/repo/tests/market_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/market_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/market_test.cpp.o.d"
  "/root/repo/tests/mobility_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/mobility_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/mobility_test.cpp.o.d"
  "/root/repo/tests/parallel_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/parallel_test.cpp.o.d"
  "/root/repo/tests/poi_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/poi_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/poi_test.cpp.o.d"
  "/root/repo/tests/policy_uniqueness_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/policy_uniqueness_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/policy_uniqueness_test.cpp.o.d"
  "/root/repo/tests/prediction_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/prediction_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/prediction_test.cpp.o.d"
  "/root/repo/tests/privacy_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/privacy_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/privacy_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/replay_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/replay_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/replay_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/report_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/stats_chi_square_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/stats_chi_square_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/stats_chi_square_test.cpp.o.d"
  "/root/repo/tests/stats_misc_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/stats_misc_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/stats_misc_test.cpp.o.d"
  "/root/repo/tests/stats_rng_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/stats_rng_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/stats_rng_test.cpp.o.d"
  "/root/repo/tests/stats_special_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/stats_special_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/stats_special_test.cpp.o.d"
  "/root/repo/tests/topn_geojson_fused_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/topn_geojson_fused_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/topn_geojson_fused_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/locpriv_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/locpriv_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/locpriv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/locpriv_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/poi/CMakeFiles/locpriv_poi.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/locpriv_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/locpriv_market.dir/DependInfo.cmake"
  "/root/repo/build/src/lppm/CMakeFiles/locpriv_lppm.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/locpriv_android.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/locpriv_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/locpriv_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/locpriv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/locpriv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
