# Empty dependencies file for lp_guardian.
# This may be replaced when dependencies are built.
