file(REMOVE_RECURSE
  "CMakeFiles/lp_guardian.dir/lp_guardian.cpp.o"
  "CMakeFiles/lp_guardian.dir/lp_guardian.cpp.o.d"
  "lp_guardian"
  "lp_guardian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_guardian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
