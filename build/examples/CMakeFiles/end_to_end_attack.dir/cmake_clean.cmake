file(REMOVE_RECURSE
  "CMakeFiles/end_to_end_attack.dir/end_to_end_attack.cpp.o"
  "CMakeFiles/end_to_end_attack.dir/end_to_end_attack.cpp.o.d"
  "end_to_end_attack"
  "end_to_end_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/end_to_end_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
