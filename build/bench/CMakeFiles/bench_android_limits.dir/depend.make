# Empty dependencies file for bench_android_limits.
# This may be replaced when dependencies are built.
