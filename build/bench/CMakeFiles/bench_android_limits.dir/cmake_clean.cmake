file(REMOVE_RECURSE
  "CMakeFiles/bench_android_limits.dir/bench_android_limits.cpp.o"
  "CMakeFiles/bench_android_limits.dir/bench_android_limits.cpp.o.d"
  "bench_android_limits"
  "bench_android_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_android_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
