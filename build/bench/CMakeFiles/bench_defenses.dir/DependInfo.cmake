
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_defenses.cpp" "bench/CMakeFiles/bench_defenses.dir/bench_defenses.cpp.o" "gcc" "bench/CMakeFiles/bench_defenses.dir/bench_defenses.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/locpriv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/locpriv_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/poi/CMakeFiles/locpriv_poi.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/locpriv_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/locpriv_market.dir/DependInfo.cmake"
  "/root/repo/build/src/lppm/CMakeFiles/locpriv_lppm.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/locpriv_android.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/locpriv_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/locpriv_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/locpriv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/locpriv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
