file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_poi_frequency.dir/bench_fig3_poi_frequency.cpp.o"
  "CMakeFiles/bench_fig3_poi_frequency.dir/bench_fig3_poi_frequency.cpp.o.d"
  "bench_fig3_poi_frequency"
  "bench_fig3_poi_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_poi_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
