# Empty dependencies file for bench_fig3_poi_frequency.
# This may be replaced when dependencies are built.
