file(REMOVE_RECURSE
  "CMakeFiles/bench_market_stats.dir/bench_market_stats.cpp.o"
  "CMakeFiles/bench_market_stats.dir/bench_market_stats.cpp.o.d"
  "bench_market_stats"
  "bench_market_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_market_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
