# Empty compiler generated dependencies file for bench_market_stats.
# This may be replaced when dependencies are built.
