file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_identification.dir/bench_fig4_identification.cpp.o"
  "CMakeFiles/bench_fig4_identification.dir/bench_fig4_identification.cpp.o.d"
  "bench_fig4_identification"
  "bench_fig4_identification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
