# Empty compiler generated dependencies file for bench_fig4_identification.
# This may be replaced when dependencies are built.
