file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_providers.dir/bench_table1_providers.cpp.o"
  "CMakeFiles/bench_table1_providers.dir/bench_table1_providers.cpp.o.d"
  "bench_table1_providers"
  "bench_table1_providers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_providers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
