# Empty dependencies file for bench_table1_providers.
# This may be replaced when dependencies are built.
