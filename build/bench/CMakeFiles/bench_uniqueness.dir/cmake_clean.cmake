file(REMOVE_RECURSE
  "CMakeFiles/bench_uniqueness.dir/bench_uniqueness.cpp.o"
  "CMakeFiles/bench_uniqueness.dir/bench_uniqueness.cpp.o.d"
  "bench_uniqueness"
  "bench_uniqueness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uniqueness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
