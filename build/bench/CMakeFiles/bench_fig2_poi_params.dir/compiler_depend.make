# Empty compiler generated dependencies file for bench_fig2_poi_params.
# This may be replaced when dependencies are built.
