file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_poi_params.dir/bench_fig2_poi_params.cpp.o"
  "CMakeFiles/bench_fig2_poi_params.dir/bench_fig2_poi_params.cpp.o.d"
  "bench_fig2_poi_params"
  "bench_fig2_poi_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_poi_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
