// E14 — downstream inference attacks on the collected traces: home/work
// identification (day/night structure), the Golle-Partridge home/work-pair
// anonymity set, and Hoh et al.'s time-to-confusion. These quantify the
// "more private personal information" the paper's introduction warns that
// background collection enables beyond raw PoIs.
#include <algorithm>
#include <map>
#include <iostream>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "privacy/inference.hpp"
#include "stats/descriptive.hpp"
#include "trace/sampling.hpp"

int main() {
  using namespace locpriv;
  bench::print_header("E14: home/work inference, pair anonymity, time to confusion",
                      /*uses_mobility_corpus=*/true);

  const core::PrivacyAnalyzer& analyzer = core::shared_analyzer();
  const auto& dataset = core::shared_dataset();
  const std::size_t users = analyzer.user_count();

  // Ground truth: home is the generator's labelled home; "work" is defined
  // behaviourally — the non-home place with the most weekday working-hours
  // dwell in the true visit log (a user whose habits route them to the gym
  // every weekday *is* best described by the gym).
  std::vector<privacy::RegionId> true_home(users);
  std::vector<privacy::RegionId> true_work(users);
  for (std::size_t u = 0; u < users; ++u) {
    const auto& profile = dataset.profiles[u];
    true_home[u] =
        analyzer.grid().region_of(dataset.poi_position(profile.home_poi()));
    std::map<int, double> workday_dwell;
    for (const auto& visit : dataset.ground_truths[u].visits) {
      if (visit.poi_id == profile.home_poi()) continue;
      workday_dwell[visit.poi_id] +=
          privacy::split_dwell(visit.enter_s, visit.exit_s).workday_s;
    }
    int best = profile.work_poi();
    double best_dwell = -1.0;
    for (const auto& [poi_id, dwell] : workday_dwell) {
      if (dwell > best_dwell) {
        best_dwell = dwell;
        best = poi_id;
      }
    }
    true_work[u] = analyzer.grid().region_of(dataset.poi_position(best));
  }

  // --- Home/work identification accuracy vs access interval -----------
  std::cout << "Home / work identification from collected locations:\n\n";
  util::ConsoleTable homework({"interval (s)", "home correct", "work correct",
                               "both correct", "unresolved"});
  std::vector<privacy::HomeWorkResult> full_rate_inferences(users);
  for (const std::int64_t interval : {1LL, 60LL, 600LL, 3600LL}) {
    int home_ok = 0;
    int work_ok = 0;
    int both_ok = 0;
    int unresolved = 0;
    for (std::size_t u = 0; u < users; ++u) {
      const auto pois = analyzer.collected_pois(u, interval);
      const privacy::HomeWorkResult inferred =
          privacy::infer_home_work(pois, analyzer.grid());
      if (interval == 1) full_rate_inferences[u] = inferred;
      if (!inferred.resolved()) {
        ++unresolved;
        continue;
      }
      const bool home_hit = inferred.home_region == true_home[u];
      const bool work_hit = inferred.work_region == true_work[u];
      home_ok += home_hit;
      work_ok += work_hit;
      both_ok += home_hit && work_hit;
    }
    homework.add_row({std::to_string(interval),
                      std::to_string(home_ok) + "/" + std::to_string(users),
                      std::to_string(work_ok) + "/" + std::to_string(users),
                      std::to_string(both_ok) + "/" + std::to_string(users),
                      std::to_string(unresolved)});
  }
  homework.print(std::cout);

  // --- Golle-Partridge pair anonymity ---------------------------------
  std::cout << "\nHome/work-pair anonymity sets (1 s collection, inferred pairs):\n\n";
  {
    std::vector<double> set_sizes;
    int resolved = 0;
    for (std::size_t u = 0; u < users; ++u) {
      if (!full_rate_inferences[u].resolved()) continue;
      ++resolved;
      set_sizes.push_back(static_cast<double>(
          privacy::pair_anonymity_set(full_rate_inferences, u)));
    }
    const auto summary = stats::summarize(set_sizes);
    util::ConsoleTable pairs({"resolved users", "singleton pairs", "mean set",
                              "max set"});
    const auto singletons = std::count(set_sizes.begin(), set_sizes.end(), 1.0);
    pairs.add_row({std::to_string(resolved),
                   std::to_string(singletons),
                   util::format_fixed(summary.mean, 2),
                   util::format_fixed(summary.max, 0)});
    pairs.print(std::cout);
    std::cout << "(Golle & Partridge: the home/work pair alone is close to a\n"
                 "unique identifier - most anonymity sets here are singletons.)\n";
  }

  // --- Time to confusion ----------------------------------------------
  std::cout << "\nTime to confusion (linkable-chain length, fixed 900 s\n"
               "linkability gap, speed <= 40 m/s):\n\n";
  util::ConsoleTable confusion({"interval (s)", "median episode", "max episode",
                                "episodes/user"});
  for (const std::int64_t interval : {1LL, 60LL, 600LL, 3600LL}) {
    std::vector<double> medians;
    std::vector<double> maxima;
    double episodes = 0.0;
    for (std::size_t u = 0; u < users; ++u) {
      const auto& points = analyzer.reference(u).points;
      const auto collected =
          interval <= 1 ? points : trace::decimate(points, interval);
      if (collected.empty()) continue;
      const auto stats_u = privacy::time_to_confusion(collected, 900, 40.0);
      medians.push_back(stats_u.median_s);
      maxima.push_back(stats_u.max_s);
      episodes += static_cast<double>(stats_u.episode_count);
    }
    confusion.add_row(
        {std::to_string(interval),
         util::format_fixed(stats::quantile(medians, 0.5) / 60.0, 1) + " min",
         util::format_fixed(stats::quantile(maxima, 0.5) / 3600.0, 1) + " h",
         util::format_fixed(episodes / static_cast<double>(users), 1)});
  }
  confusion.print(std::cout);
  const int homework_rc = bench::export_table("inference_homework", homework);
  const int confusion_rc = bench::export_table("inference_confusion", confusion);
  std::cout << "\nFast pollers maintain day-long tracking chains; slow pollers\n"
               "fragment into short episodes the adversary cannot stitch.\n";
  return homework_rc != 0 ? homework_rc : confusion_rc;
}
