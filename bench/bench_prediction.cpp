// E15 — what the leaked habits are worth to the adversary:
//  (a) reconstruction error (Shokri-style correctness) — how far off is the
//      adversary's estimate of the user's position, as the app's access
//      interval grows;
//  (b) next-place prediction — train a Markov predictor on the first days
//      of collected movement, test on the remaining days' true movement.
#include <iostream>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "poi/clustering.hpp"
#include "privacy/prediction.hpp"
#include "privacy/reconstruction.hpp"
#include "stats/descriptive.hpp"
#include "trace/sampling.hpp"

int main() {
  using namespace locpriv;
  bench::print_header("E15: reconstruction error and next-place prediction",
                      /*uses_mobility_corpus=*/true);

  const core::PrivacyAnalyzer& analyzer = core::shared_analyzer();
  const std::size_t users = analyzer.user_count();

  // --- (a) reconstruction error vs interval ---------------------------
  std::cout << "Adversary position-estimate error (piecewise-constant estimate\n"
               "from collected fixes, sampled against the truth every 60 s):\n\n";
  util::ConsoleTable error_table(
      {"interval (s)", "median of user means (m)", "median p90 (m)"});
  for (const std::int64_t interval : {1LL, 60LL, 600LL, 3600LL, 7200LL}) {
    std::vector<double> means;
    std::vector<double> p90s;
    for (std::size_t u = 0; u < users; ++u) {
      const auto& truth = analyzer.reference(u).points;
      const auto collected =
          interval <= 1 ? truth : trace::decimate(truth, interval);
      if (collected.empty()) continue;
      const privacy::PositionEstimator estimator(collected);
      const auto error = privacy::reconstruction_error(truth, estimator, 60);
      means.push_back(error.mean_m);
      p90s.push_back(error.p90_m);
    }
    error_table.add_row({std::to_string(interval),
                         util::format_fixed(stats::quantile(means, 0.5), 0),
                         util::format_fixed(stats::quantile(p90s, 0.5), 0)});
  }
  error_table.print(std::cout);

  // --- (b) next-place prediction --------------------------------------
  std::cout << "\nNext-place prediction: train on movement patterns observed in\n"
               "the first 60% of the collected trace, evaluate on the true\n"
               "visit sequence of the remaining 40%:\n\n";
  util::ConsoleTable prediction_table(
      {"interval (s)", "mean accuracy", "users with >=50% accuracy"});
  for (const std::int64_t interval : {1LL, 60LL, 600LL}) {
    std::vector<double> accuracies;
    int strong = 0;
    for (std::size_t u = 0; u < users; ++u) {
      const auto& truth = analyzer.reference(u).points;
      const auto head = trace::take_prefix_fraction(truth, 0.6);
      // Train from what the app collects over the head.
      const auto observed = privacy::observed_histogram(
          head, privacy::Pattern::kMovements, analyzer.config().extraction,
          analyzer.grid(), interval);
      if (observed.empty()) continue;
      const privacy::NextPlacePredictor predictor(observed);

      // Held-out truth: the tail's true region sequence (full-rate PoIs).
      std::vector<trace::TracePoint> tail(truth.begin() + static_cast<std::ptrdiff_t>(
                                              head.size()),
                                          truth.end());
      const auto tail_stays =
          poi::extract_stay_points(tail, analyzer.config().extraction);
      const auto tail_pois =
          poi::cluster_stay_points(tail_stays, analyzer.config().extraction.radius_m);
      const auto sequence = privacy::region_sequence(tail_pois, analyzer.grid());
      if (sequence.size() < 2) continue;
      const auto score = privacy::score_predictions(predictor, sequence);
      if (score.evaluated == 0) continue;
      accuracies.push_back(score.accuracy());
      if (score.accuracy() >= 0.5) ++strong;
    }
    prediction_table.add_row(
        {std::to_string(interval),
         util::format_percent(stats::mean(accuracies), 1),
         std::to_string(strong) + "/" + std::to_string(users)});
  }
  prediction_table.print(std::cout);
  std::cout <<
      "\nThe movement histogram is not just an identifier: at fast intervals\n"
      "the top-1 next-place guess lands ~2-3x above chance (users have ~8-10\n"
      "candidate places), and the adversary's position estimate is exact at\n"
      "sub-minute polling. Both collapse once the access interval passes the\n"
      "Figure 3 knee - the same knee that governs PoI recovery.\n";
  const int error_rc = bench::export_table("prediction_error", error_table);
  const int next_rc = bench::export_table("prediction_next_place", prediction_table);
  return error_rc != 0 ? error_rc : next_rc;
}
