// Fault-degradation sweep: how the paper's leakage metrics (PoI_total,
// PoI_sensitive, His_bin, Deg_anonymity) hold up when the location substrate
// misbehaves. For every (fault intensity, access interval) pair a spy app is
// driven along each user's trace through the real framework path with a
// seeded sim::FaultInjector between scheduling and delivery — GPS outages,
// cold-start TTFF, position noise/drift, delivery loss/delay, fused
// failover. Intensity 0 is the perfect substrate and doubles as the
// regression anchor: its delivery path is byte-identical to an
// uninstrumented replay.
//
// The sweep runs under the run harness (E17 is the longest campaign in the
// suite): with `--run-dir DIR` every completed (intensity, interval) cell is
// journaled to DIR/ledger.jsonl, and a crashed or SIGKILLed run rerun with
// `--resume DIR` skips the completed cells and produces a final CSV byte-
// identical to an uninterrupted run. `--heartbeat/--soft-deadline/
// --hard-deadline` supervise the sweep stage; a blown hard deadline aborts
// with exit 5. Under `--isolate` each cell attempt runs in a forked,
// rlimit-capped child supervised by harness::Supervisor: a segfaulting,
// hanging, or memory-bombing cell is retried with deterministic backoff and
// finally quarantined (exit 3) while the rest of the sweep completes.
// `--fault-cells crash@i0.50_t60,...` injects process-level faults for
// exercising exactly that path.
//
// Output: one row per (intensity, interval) pair, averaged over users, as a
// console table, a CSV block on stdout, atomically written CSV/JSON
// artifacts in the run dir (with --run-dir/--resume), and CSV/JSON files
// under LOCPRIV_CSV_DIR. Everything derives from kDatasetSeed, so two runs
// produce identical bytes.
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "android/fused.hpp"
#include "android/replay.hpp"
#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "core/harness/run_ledger.hpp"
#include "core/harness/supervisor.hpp"
#include "core/harness/sweep.hpp"
#include "core/harness/watchdog.hpp"
#include "sim/faults/injector.hpp"
#include "sim/faults/process_plan.hpp"
#include "util/args.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace {

using namespace locpriv;

constexpr double kIntensities[] = {0.0, 0.25, 0.5, 0.75, 1.0};
constexpr std::int64_t kIntervals[] = {1, 10, 60, 600, 3600};
constexpr int kUserCount = 8;
constexpr int kDays = 3;

android::AndroidManifest spy_manifest() {
  android::AndroidManifest manifest;
  manifest.package_name = "com.spy";
  manifest.uses_permissions = {android::Permission::kAccessFineLocation};
  return manifest;
}

android::AppBehavior spy_behavior(std::int64_t interval_s) {
  android::AppBehavior behavior;
  behavior.uses_location = true;
  behavior.auto_start_on_launch = true;
  behavior.continues_in_background = true;
  // Fused is the interesting provider under faults: it degrades across
  // gps -> network -> last-known instead of going silent.
  behavior.providers = {android::LocationProvider::kFused};
  behavior.request_interval_s = interval_s;
  behavior.requested_granularity = android::Granularity::kFine;
  return behavior;
}

struct SweepRow {
  double intensity = 0.0;
  std::int64_t interval_s = 0;
  double delivered = 0.0;
  double withheld_outage = 0.0;
  double dropped_loss = 0.0;
  double degraded_network = 0.0;
  double served_last_known = 0.0;
  double poi_total = 0.0;
  double poi_sensitive = 0.0;
  double hisbin_rate = 0.0;  ///< Fraction of users with either pattern firing.
  double anonymity = 0.0;    ///< Mean Deg_anonymity (pattern 2).
};

const std::vector<std::string> kCsvHeader = {
    "intensity", "interval_s", "delivered", "withheld_outage", "dropped_loss",
    "degraded_network", "served_last_known", "poi_total", "poi_sensitive",
    "hisbin_rate", "deg_anonymity_p2"};

std::vector<std::string> csv_fields(const SweepRow& row) {
  return std::vector<std::string>{
      util::format_fixed(row.intensity, 2), std::to_string(row.interval_s),
      util::format_fixed(row.delivered, 1),
      util::format_fixed(row.withheld_outage, 1),
      util::format_fixed(row.dropped_loss, 1),
      util::format_fixed(row.degraded_network, 1),
      util::format_fixed(row.served_last_known, 1),
      util::format_fixed(row.poi_total, 4),
      util::format_fixed(row.poi_sensitive, 4),
      util::format_fixed(row.hisbin_rate, 4),
      util::format_fixed(row.anonymity, 4)};
}

/// The ledger cell key for one sweep cell.
std::string cell_key(double intensity, std::int64_t interval_s) {
  return "i" + util::format_fixed(intensity, 2) + "_t" + std::to_string(interval_s);
}

/// Rebuilds a row from its serialized fields. Fresh and resumed cells both
/// flow through this round-trip, so every downstream artifact (table,
/// stdout CSV, file CSV/JSON) renders identical bytes either way.
SweepRow parse_fields(const std::vector<std::string>& fields) {
  if (fields.size() != kCsvHeader.size())
    throw Error(ErrorCode::kResume, "sweep cell has " +
                                        std::to_string(fields.size()) +
                                        " fields, expected " +
                                        std::to_string(kCsvHeader.size()));
  const auto number = [&](std::size_t index) {
    double value = 0.0;
    if (!util::parse_double(fields[index], value))
      throw Error(ErrorCode::kResume,
                  "bad sweep field '" + fields[index] + "' for " + kCsvHeader[index]);
    return value;
  };
  SweepRow row;
  row.intensity = number(0);
  long long interval = 0;
  if (!util::parse_int64(fields[1], interval))
    throw Error(ErrorCode::kResume, "bad sweep interval '" + fields[1] + "'");
  row.interval_s = interval;
  row.delivered = number(2);
  row.withheld_outage = number(3);
  row.dropped_loss = number(4);
  row.degraded_network = number(5);
  row.served_last_known = number(6);
  row.poi_total = number(7);
  row.poi_sensitive = number(8);
  row.hisbin_rate = number(9);
  row.anonymity = number(10);
  return row;
}

/// Replays every user through the faulted framework path for one sweep
/// cell. Users run under parallel_for (the analyzer is read-only after
/// construction); the reduction stays in user order, so the averages are
/// identical to the sequential loop at any thread count. Each user starts
/// with a watchdog checkpoint, which is how a blown hard deadline surfaces
/// here via the loop's exception aggregation.
SweepRow compute_cell(const core::PrivacyAnalyzer& analyzer, double intensity,
                      std::int64_t interval_s, harness::StageWatchdog& watchdog) {
  std::vector<SweepRow> partial(analyzer.user_count());
  util::parallel_for(analyzer.user_count(), [&](std::size_t user) {
    watchdog.checkpoint();
    SweepRow& slot = partial[user];
    const auto& points = analyzer.reference(user).points;
    if (points.empty()) return;
    const std::int64_t t0 = points.front().timestamp_s;
    const std::int64_t t1 = points.back().timestamp_s;

    android::DeviceSimulator device(core::kDatasetSeed + user,
                                    points.front().position);
    device.jump_to(t0 - 1);
    device.install(spy_manifest(), spy_behavior(interval_s));
    device.launch("com.spy");
    device.move_to_background("com.spy");

    // Seed per (intensity, user): the interval must NOT change the
    // schedule, only how the app samples it; users get disjoint streams.
    std::uint64_t schedule_seed = core::kDatasetSeed;
    stats::splitmix64(schedule_seed);
    schedule_seed += static_cast<std::uint64_t>(intensity * 1000.0) * 1000003ULL +
                     user;
    sim::FaultInjector injector(sim::FaultConfig::canonical(intensity),
                                schedule_seed, t0, t1 + 1);
    injector.install(device.location_manager());

    android::replay_trace(device, points, /*sync_clock=*/false);
    const auto collected =
        android::collected_fixes(device.location_manager(), "com.spy");
    const auto report = analyzer.evaluate_collected(user, interval_s, collected);

    const auto& counters = injector.counters();
    slot.delivered = static_cast<double>(counters.delivered);
    slot.withheld_outage = static_cast<double>(counters.withheld_outage);
    slot.dropped_loss = static_cast<double>(counters.dropped_loss);
    slot.degraded_network = static_cast<double>(counters.degraded_network);
    slot.served_last_known = static_cast<double>(counters.served_last_known);
    slot.poi_total = report.poi_total.fraction();
    slot.poi_sensitive = report.poi_sensitive.fraction();
    slot.hisbin_rate = report.breach_detected() ? 1.0 : 0.0;
    slot.anonymity = report.anonymity_movements;
  });

  SweepRow row;
  row.intensity = intensity;
  row.interval_s = interval_s;
  for (const SweepRow& slot : partial) {
    row.delivered += slot.delivered;
    row.withheld_outage += slot.withheld_outage;
    row.dropped_loss += slot.dropped_loss;
    row.degraded_network += slot.degraded_network;
    row.served_last_known += slot.served_last_known;
    row.poi_total += slot.poi_total;
    row.poi_sensitive += slot.poi_sensitive;
    row.hisbin_rate += slot.hisbin_rate;
    row.anonymity += slot.anonymity;
  }
  const auto users = static_cast<double>(analyzer.user_count());
  row.delivered /= users;
  row.withheld_outage /= users;
  row.dropped_loss /= users;
  row.degraded_network /= users;
  row.served_last_known /= users;
  row.poi_total /= users;
  row.poi_sensitive /= users;
  row.hisbin_rate /= users;
  row.anonymity /= users;
  return row;
}

int run(int argc, char** argv) {
  util::Args args;
  harness::declare_run_flags(args);
  args.declare("--fault-cells", "");
  harness::RunOptions options;
  sim::ProcessFaultPlan fault_plan;
  try {
    args.parse(argc, argv, 1);
    fault_plan = sim::ProcessFaultPlan::parse(args.get("--fault-cells"));
  } catch (const std::runtime_error& error) {
    throw Error(ErrorCode::kUsage, error.what());
  }
  options = harness::run_options_from(args, "fault sweep");
  if (!options.active() &&
      (options.supervisor.isolate || options.supervisor.workers > 1))
    throw Error(ErrorCode::kUsage,
                "--isolate/--workers need a journal to report into; pass "
                "--run-dir or --resume");
  options.supervisor.backoff_seed = core::kDatasetSeed;

  bench::print_header("fault degradation: leakage metrics vs substrate faults",
                      /*uses_mobility_corpus=*/false);

  // A dedicated small corpus: the sweep replays every user once per cell
  // through per-second framework ticks, so it pays for wall-clock directly.
  mobility::DatasetConfig dataset_config;
  dataset_config.seed = core::kDatasetSeed;
  dataset_config.user_count = kUserCount;
  dataset_config.synthesis.days = kDays;
  std::cout << "corpus: " << dataset_config.user_count << " users x "
            << dataset_config.synthesis.days << " days (seed "
            << dataset_config.seed << ")\n\n";
  const core::PrivacyAnalyzer analyzer = core::PrivacyAnalyzer::from_synthetic(
      core::experiment_analyzer_config(), dataset_config);

  const harness::RunInfo run_info{
      "bench_fault_degradation", core::kDatasetSeed,
      std::to_string(kUserCount) + "u" + std::to_string(kDays) + "d",
      options.mode_string()};
  const std::unique_ptr<harness::RunLedger> ledger =
      harness::open_ledger(options, run_info);

  // Enumerate the sweep once; every downstream consumer (dispatch, row
  // assembly, artifacts) walks this order, so artifact bytes do not depend
  // on which worker finished first.
  std::vector<std::pair<double, std::int64_t>> cell_specs;
  std::vector<std::string> cell_keys;
  for (const double intensity : kIntensities)
    for (const std::int64_t interval_s : kIntervals) {
      cell_specs.emplace_back(intensity, interval_s);
      cell_keys.push_back(cell_key(intensity, interval_s));
    }
  const std::size_t cell_count = cell_keys.size();
  if (ledger != nullptr && ledger->completed_count() > 0)
    std::cout << "resume: " << ledger->completed_count() << "/" << cell_count
              << " cells already journaled in " << ledger->path().string()
              << "\n\n";

  harness::StageWatchdog watchdog(options.stage);
  watchdog.set_total(cell_count);
  if (ledger != nullptr) watchdog.add_progress(ledger->completed_count());

  const harness::CellFn cell_fn = [&](std::size_t index, const std::string& key,
                                      int attempt) {
    // Injected process faults fire first: crash/hang take the child down
    // before any work, the alloc bomb dies against the cell rlimit.
    fault_plan.trigger(key, attempt);
    const auto [intensity, interval_s] = cell_specs[index];
    return csv_fields(compute_cell(analyzer, intensity, interval_s, watchdog));
  };

  std::vector<std::string> quarantined;
  std::vector<SweepRow> rows;
  if (ledger != nullptr) {
    harness::Supervisor supervisor(options.supervisor);
    const harness::SupervisorOutcome outcome =
        supervisor.run(cell_keys, cell_fn, *ledger, &watchdog);
    quarantined = outcome.quarantined;
    // Rows assemble from the ledger in enumeration order — computed,
    // replayed, and isolated cells are indistinguishable here, which is the
    // byte-identity argument. Quarantined cells are simply absent.
    for (const std::string& key : cell_keys)
      if (const auto* fields = ledger->fields(key); fields != nullptr)
        rows.push_back(parse_fields(*fields));
  } else {
    for (std::size_t i = 0; i < cell_count; ++i) {
      const std::vector<std::string> fields = cell_fn(i, cell_keys[i], 1);
      rows.push_back(parse_fields(fields));
      watchdog.add_progress();
    }
  }

  util::ConsoleTable table({"intensity", "interval (s)", "fixes", "outage-held",
                            "lost", "net-degraded", "stale", "PoI_total",
                            "His_bin rate", "Deg_anon (p2)"});
  for (const SweepRow& row : rows)
    table.add_row({util::format_fixed(row.intensity, 2),
                   std::to_string(row.interval_s),
                   util::format_fixed(row.delivered, 0),
                   util::format_fixed(row.withheld_outage, 0),
                   util::format_fixed(row.dropped_loss, 0),
                   util::format_fixed(row.degraded_network, 0),
                   util::format_fixed(row.served_last_known, 0),
                   util::format_percent(row.poi_total, 1),
                   util::format_percent(row.hisbin_rate, 1),
                   util::format_fixed(row.anonymity, 3)});
  table.print(std::cout);

  // Machine-readable copies: a CSV block on stdout (always, so two runs can
  // be diffed byte-for-byte), plus atomically published CSV/JSON artifacts
  // in the run dir and/or under LOCPRIV_CSV_DIR.
  std::cout << "\n--- csv ---\n";
  util::CsvWriter stdout_csv(std::cout);
  stdout_csv.write_row(kCsvHeader);
  for (const SweepRow& row : rows) stdout_csv.write_row(csv_fields(row));

  const auto render_json = [&rows] {
    util::JsonWriter json;
    json.begin_object();
    json.key("rows");
    json.begin_array();
    for (const SweepRow& row : rows) {
      json.begin_object();
      json.member("intensity", row.intensity);
      json.member("interval_s", row.interval_s);
      json.member("delivered", row.delivered);
      json.member("poi_total", row.poi_total);
      json.member("poi_sensitive", row.poi_sensitive);
      json.member("hisbin_rate", row.hisbin_rate);
      json.member("deg_anonymity_p2", row.anonymity);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    return json.str() + "\n";
  };

  if (options.active()) {
    harness::AtomicFileWriter csv_artifact(options.run_dir /
                                           "fault_degradation.csv");
    util::CsvWriter csv(csv_artifact.stream());
    csv.write_row(kCsvHeader);
    for (const SweepRow& row : rows) csv.write_row(csv_fields(row));
    csv_artifact.commit();
    harness::write_file_atomic(options.run_dir / "fault_degradation.json",
                               render_json());
    std::cout << "(artifacts -> " << options.run_dir.string()
              << "/fault_degradation.{csv,json})\n";
  }

  bench::SeriesCsv file_csv("fault_degradation");
  file_csv.row(kCsvHeader);
  for (const SweepRow& row : rows) file_csv.row(csv_fields(row));
  const int artifact_rc = file_csv.commit();

  if (const char* dir = std::getenv("LOCPRIV_CSV_DIR"); dir != nullptr && *dir) {
    const std::string path = std::string(dir) + "/fault_degradation.json";
    harness::write_file_atomic(path, render_json());
    std::cout << "(json -> " << path << ")\n";
  }

  if (!quarantined.empty()) {
    std::cout << "\nquarantined cells (" << quarantined.size() << "/"
              << cell_count << "):\n";
    for (const std::string& key : quarantined) {
      std::cout << "  " << key << "\n";
      if (const auto* details = ledger->quarantine_details(key);
          details != nullptr)
        for (const std::string& detail : *details)
          std::cout << "    " << detail << "\n";
    }
    std::cout << "(rerun with --resume " << options.run_dir.string()
              << " to retry them)\n";
    return exit_code(ErrorCode::kQuarantined);
  }
  return artifact_rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return error.exit_code();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return exit_code(ErrorCode::kInternal);
  }
}
