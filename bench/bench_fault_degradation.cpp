// Fault-degradation sweep: how the paper's leakage metrics (PoI_total,
// PoI_sensitive, His_bin, Deg_anonymity) hold up when the location substrate
// misbehaves. For every (fault intensity, access interval) pair a spy app is
// driven along each user's trace through the real framework path with a
// seeded sim::FaultInjector between scheduling and delivery — GPS outages,
// cold-start TTFF, position noise/drift, delivery loss/delay, fused
// failover. Intensity 0 is the perfect substrate and doubles as the
// regression anchor: its delivery path is byte-identical to an
// uninstrumented replay.
//
// Output: one row per (intensity, interval) pair, averaged over users, as a
// console table, a CSV block on stdout, and (with LOCPRIV_CSV_DIR set)
// fault_degradation.csv / fault_degradation.json files. Everything derives
// from kDatasetSeed, so two runs produce identical bytes.
#include <iostream>
#include <string>
#include <vector>

#include "android/fused.hpp"
#include "android/replay.hpp"
#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "sim/faults/injector.hpp"
#include "util/json.hpp"

namespace {

using namespace locpriv;

constexpr double kIntensities[] = {0.0, 0.25, 0.5, 0.75, 1.0};
constexpr std::int64_t kIntervals[] = {1, 10, 60, 600, 3600};

android::AndroidManifest spy_manifest() {
  android::AndroidManifest manifest;
  manifest.package_name = "com.spy";
  manifest.uses_permissions = {android::Permission::kAccessFineLocation};
  return manifest;
}

android::AppBehavior spy_behavior(std::int64_t interval_s) {
  android::AppBehavior behavior;
  behavior.uses_location = true;
  behavior.auto_start_on_launch = true;
  behavior.continues_in_background = true;
  // Fused is the interesting provider under faults: it degrades across
  // gps -> network -> last-known instead of going silent.
  behavior.providers = {android::LocationProvider::kFused};
  behavior.request_interval_s = interval_s;
  behavior.requested_granularity = android::Granularity::kFine;
  return behavior;
}

struct SweepRow {
  double intensity = 0.0;
  std::int64_t interval_s = 0;
  double delivered = 0.0;
  double withheld_outage = 0.0;
  double dropped_loss = 0.0;
  double degraded_network = 0.0;
  double served_last_known = 0.0;
  double poi_total = 0.0;
  double poi_sensitive = 0.0;
  double hisbin_rate = 0.0;  ///< Fraction of users with either pattern firing.
  double anonymity = 0.0;    ///< Mean Deg_anonymity (pattern 2).
};

}  // namespace

int main() {
  bench::print_header("fault degradation: leakage metrics vs substrate faults",
                      /*uses_mobility_corpus=*/false);

  // A dedicated small corpus: the sweep replays every user once per cell
  // through per-second framework ticks, so it pays for wall-clock directly.
  mobility::DatasetConfig dataset_config;
  dataset_config.seed = core::kDatasetSeed;
  dataset_config.user_count = 8;
  dataset_config.synthesis.days = 3;
  std::cout << "corpus: " << dataset_config.user_count << " users x "
            << dataset_config.synthesis.days << " days (seed "
            << dataset_config.seed << ")\n\n";
  const core::PrivacyAnalyzer analyzer = core::PrivacyAnalyzer::from_synthetic(
      core::experiment_analyzer_config(), dataset_config);

  std::vector<SweepRow> rows;
  for (const double intensity : kIntensities) {
    for (const std::int64_t interval_s : kIntervals) {
      SweepRow row;
      row.intensity = intensity;
      row.interval_s = interval_s;
      for (std::size_t user = 0; user < analyzer.user_count(); ++user) {
        const auto& points = analyzer.reference(user).points;
        if (points.empty()) continue;
        const std::int64_t t0 = points.front().timestamp_s;
        const std::int64_t t1 = points.back().timestamp_s;

        android::DeviceSimulator device(core::kDatasetSeed + user,
                                        points.front().position);
        device.jump_to(t0 - 1);
        device.install(spy_manifest(), spy_behavior(interval_s));
        device.launch("com.spy");
        device.move_to_background("com.spy");

        // Seed per (intensity, user): the interval must NOT change the
        // schedule, only how the app samples it; users get disjoint streams.
        std::uint64_t schedule_seed = core::kDatasetSeed;
        stats::splitmix64(schedule_seed);
        schedule_seed += static_cast<std::uint64_t>(intensity * 1000.0) * 1000003ULL +
                         user;
        sim::FaultInjector injector(sim::FaultConfig::canonical(intensity),
                                    schedule_seed, t0, t1 + 1);
        injector.install(device.location_manager());

        android::replay_trace(device, points, /*sync_clock=*/false);
        const auto collected =
            android::collected_fixes(device.location_manager(), "com.spy");
        const auto report = analyzer.evaluate_collected(user, interval_s, collected);

        const auto& counters = injector.counters();
        row.delivered += static_cast<double>(counters.delivered);
        row.withheld_outage += static_cast<double>(counters.withheld_outage);
        row.dropped_loss += static_cast<double>(counters.dropped_loss);
        row.degraded_network += static_cast<double>(counters.degraded_network);
        row.served_last_known += static_cast<double>(counters.served_last_known);
        row.poi_total += report.poi_total.fraction();
        row.poi_sensitive += report.poi_sensitive.fraction();
        row.hisbin_rate += report.breach_detected() ? 1.0 : 0.0;
        row.anonymity += report.anonymity_movements;
      }
      const auto users = static_cast<double>(analyzer.user_count());
      row.delivered /= users;
      row.withheld_outage /= users;
      row.dropped_loss /= users;
      row.degraded_network /= users;
      row.served_last_known /= users;
      row.poi_total /= users;
      row.poi_sensitive /= users;
      row.hisbin_rate /= users;
      row.anonymity /= users;
      rows.push_back(row);
    }
  }

  util::ConsoleTable table({"intensity", "interval (s)", "fixes", "outage-held",
                            "lost", "net-degraded", "stale", "PoI_total",
                            "His_bin rate", "Deg_anon (p2)"});
  for (const SweepRow& row : rows)
    table.add_row({util::format_fixed(row.intensity, 2),
                   std::to_string(row.interval_s),
                   util::format_fixed(row.delivered, 0),
                   util::format_fixed(row.withheld_outage, 0),
                   util::format_fixed(row.dropped_loss, 0),
                   util::format_fixed(row.degraded_network, 0),
                   util::format_fixed(row.served_last_known, 0),
                   util::format_percent(row.poi_total, 1),
                   util::format_percent(row.hisbin_rate, 1),
                   util::format_fixed(row.anonymity, 3)});
  table.print(std::cout);

  // Machine-readable copies: a CSV block on stdout (always, so two runs can
  // be diffed byte-for-byte), plus CSV/JSON files under LOCPRIV_CSV_DIR.
  const std::vector<std::string> csv_header = {
      "intensity", "interval_s", "delivered", "withheld_outage", "dropped_loss",
      "degraded_network", "served_last_known", "poi_total", "poi_sensitive",
      "hisbin_rate", "deg_anonymity_p2"};
  const auto csv_fields = [](const SweepRow& row) {
    return std::vector<std::string>{
        util::format_fixed(row.intensity, 2), std::to_string(row.interval_s),
        util::format_fixed(row.delivered, 1),
        util::format_fixed(row.withheld_outage, 1),
        util::format_fixed(row.dropped_loss, 1),
        util::format_fixed(row.degraded_network, 1),
        util::format_fixed(row.served_last_known, 1),
        util::format_fixed(row.poi_total, 4),
        util::format_fixed(row.poi_sensitive, 4),
        util::format_fixed(row.hisbin_rate, 4),
        util::format_fixed(row.anonymity, 4)};
  };

  std::cout << "\n--- csv ---\n";
  util::CsvWriter stdout_csv(std::cout);
  stdout_csv.write_row(csv_header);
  for (const SweepRow& row : rows) stdout_csv.write_row(csv_fields(row));

  bench::SeriesCsv file_csv("fault_degradation");
  file_csv.row(csv_header);
  for (const SweepRow& row : rows) file_csv.row(csv_fields(row));

  if (const char* dir = std::getenv("LOCPRIV_CSV_DIR"); dir != nullptr && *dir) {
    util::JsonWriter json;
    json.begin_object();
    json.key("rows");
    json.begin_array();
    for (const SweepRow& row : rows) {
      json.begin_object();
      json.member("intensity", row.intensity);
      json.member("interval_s", row.interval_s);
      json.member("delivered", row.delivered);
      json.member("poi_total", row.poi_total);
      json.member("poi_sensitive", row.poi_sensitive);
      json.member("hisbin_rate", row.hisbin_rate);
      json.member("deg_anonymity_p2", row.anonymity);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    const std::string path = std::string(dir) + "/fault_degradation.json";
    std::ofstream out(path);
    if (out) {
      out << json.str() << '\n';
      std::cout << "(json -> " << path << ")\n";
    } else {
      std::cerr << "warning: cannot write " << path << '\n';
    }
  }
  return 0;
}
