// E3 — Figure 1: cumulative distribution of the interval between two
// background location requests across the 102 background apps. Intervals
// are measured from parsed dumpsys reports during the dynamic stage.
#include <iostream>

#include "bench_common.hpp"
#include "market/catalog.hpp"
#include "market/study.hpp"
#include "stats/histogram.hpp"

int main() {
  using namespace locpriv;
  bench::print_header("E3: Figure 1 - CDF of background request intervals",
                      /*uses_mobility_corpus=*/false);

  market::CatalogConfig config;
  config.seed = core::kCatalogSeed;
  const market::Catalog catalog = market::generate_catalog(config);
  const market::MarketReport report = market::run_market_study(catalog, 7);

  std::vector<double> intervals;
  intervals.reserve(report.background_intervals.size());
  std::int64_t max_interval = 0;
  for (const std::int64_t interval : report.background_intervals) {
    intervals.push_back(static_cast<double>(interval));
    max_interval = std::max(max_interval, interval);
  }
  const stats::Ecdf cdf(std::move(intervals));

  bench::SeriesCsv csv("fig1_frequency_cdf");
  csv.row({"interval_s", "cdf"});
  util::ConsoleTable table({"interval <= (s)", "CDF measured", "CDF paper"});
  const std::pair<double, const char*> anchors[] = {
      {1.0, "-"},    {5.0, "-"},     {10.0, "57.8%"}, {30.0, "-"},
      {60.0, "68.6%"}, {120.0, "-"},  {300.0, "-"},    {600.0, "83.8%"},
      {1800.0, "-"}, {3600.0, "-"},  {7200.0, "100%"},
  };
  for (const auto& [x, paper] : anchors) {
    table.add_row({util::format_fixed(x, 0), util::format_percent(cdf(x), 1), paper});
    csv.row({util::format_fixed(x, 0), util::format_fixed(cdf(x), 4)});
  }
  table.print(std::cout);

  std::cout << '\n';
  bench::print_comparison("largest observed interval", "7200 s",
                          std::to_string(max_interval) + " s");
  int slowest = 0;
  for (const std::int64_t interval : report.background_intervals)
    if (interval == max_interval) ++slowest;
  bench::print_comparison("apps at the largest interval", "1", std::to_string(slowest));
  bench::print_comparison("sample size (background apps)", "102",
                          std::to_string(report.background_intervals.size()));
  return csv.commit();
}
