// E7/E8 — Figure 4: risk-detection speed under the two profile patterns.
//
//  (a) CDF over users of the fraction of the trace an adversary needs before
//      uniquely identifying them, collecting from the trace start at 1 s.
//  (b) Same, but collection begins at a random position in the trace.
//  (c) Number of users identified as the access interval grows.
//  (d) For users both patterns identify: which pattern is strictly faster.
//
// "Detection" follows the paper's quasi-identifier reading: the chi-square
// match set over all profiles collapses to exactly the true user (see
// DESIGN.md on why the self-match reading is not recoverable from the
// paper's formulas).
#include <iostream>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "mobility/synthesis.hpp"
#include "privacy/detection.hpp"
#include "privacy/topn.hpp"
#include "stats/rng.hpp"
#include "trace/sampling.hpp"

namespace {

using namespace locpriv;

// Earliest identification over an arbitrary point window, as a fraction of
// the user's full trace (so (a) and (b) share an x-axis).
privacy::DetectionOutcome identify_over(const std::vector<trace::TracePoint>& window,
                                        std::size_t full_size,
                                        const core::PrivacyAnalyzer& analyzer,
                                        std::size_t user, privacy::Pattern pattern,
                                        std::int64_t interval_s) {
  privacy::DetectionConfig config(analyzer.grid());
  config.extraction = analyzer.config().extraction;
  config.match = analyzer.config().match;
  config.interval_s = interval_s;
  privacy::DetectionOutcome outcome = privacy::earliest_identification(
      window, analyzer.adversary(), user, pattern, config);
  if (outcome.detected)
    outcome.fraction = outcome.fraction * static_cast<double>(window.size()) /
                       static_cast<double>(full_size);
  return outcome;
}

void print_cdf(const std::string& title, const std::vector<double>& p1_fractions,
               const std::vector<double>& p2_fractions, std::size_t user_count) {
  std::cout << title << "\n\n";
  util::ConsoleTable table({"collected <= (% of profile)", "pattern 1 (visits)",
                            "pattern 2 (movements)"});
  for (const double limit : {0.05, 0.10, 0.20, 0.30, 0.50, 0.75, 1.0}) {
    const auto count_below = [&](const std::vector<double>& fractions) {
      std::size_t count = 0;
      for (const double f : fractions)
        if (f <= limit + 1e-9) ++count;
      return util::format_percent(static_cast<double>(count) /
                                      static_cast<double>(user_count),
                                  1);
    };
    table.add_row({util::format_percent(limit, 0), count_below(p1_fractions),
                   count_below(p2_fractions)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::print_header("E7/E8: Figure 4 - identification speed, pattern 1 vs 2",
                      /*uses_mobility_corpus=*/true);

  const core::PrivacyAnalyzer& analyzer = core::shared_analyzer();
  const std::size_t users = analyzer.user_count();

  // ---- (a) from the trace start at 1 s -------------------------------
  std::vector<double> p1_start;
  std::vector<double> p2_start;
  std::vector<bool> p1_detected(users, false);
  std::vector<bool> p2_detected(users, false);
  std::vector<double> p1_fraction(users, 2.0);
  std::vector<double> p2_fraction(users, 2.0);
  for (std::size_t u = 0; u < users; ++u) {
    const auto p1 = analyzer.earliest_identification(u, privacy::Pattern::kVisits, 1);
    const auto p2 =
        analyzer.earliest_identification(u, privacy::Pattern::kMovements, 1);
    if (p1.detected) {
      p1_start.push_back(p1.fraction);
      p1_detected[u] = true;
      p1_fraction[u] = p1.fraction;
    }
    if (p2.detected) {
      p2_start.push_back(p2.fraction);
      p2_detected[u] = true;
      p2_fraction[u] = p2.fraction;
    }
  }
  print_cdf("Figure 4(a) - collection starts at the beginning of the trace\n"
            "(paper anchor: <=10% of profile identifies ~52% of users with\n"
            "pattern 2 but only ~13% with pattern 1)",
            p1_start, p2_start, users);
  int artifact_rc = 0;
  {
    bench::SeriesCsv csv("fig4a_identification_fractions");
    csv.row({"user", "pattern1_fraction", "pattern2_fraction"});
    for (std::size_t u = 0; u < users; ++u)
      csv.row({std::to_string(u),
               p1_detected[u] ? util::format_fixed(p1_fraction[u], 3) : "",
               p2_detected[u] ? util::format_fixed(p2_fraction[u], 3) : ""});
    artifact_rc = csv.commit();
  }

  // ---- (b) from a random position at 1 s -----------------------------
  std::vector<double> p1_random;
  std::vector<double> p2_random;
  stats::Rng offsets(core::kDatasetSeed ^ 0x5eedULL);
  for (std::size_t u = 0; u < users; ++u) {
    const auto& points = analyzer.reference(u).points;
    const auto window = trace::from_random_offset(points, offsets);
    const auto p1 = identify_over(window, points.size(), analyzer, u,
                                  privacy::Pattern::kVisits, 1);
    const auto p2 = identify_over(window, points.size(), analyzer, u,
                                  privacy::Pattern::kMovements, 1);
    if (p1.detected) p1_random.push_back(p1.fraction);
    if (p2.detected) p2_random.push_back(p2.fraction);
  }
  std::cout << '\n';
  print_cdf("Figure 4(b) - collection starts at a random trace position",
            p1_random, p2_random, users);

  // ---- (c) users identified vs access interval -----------------------
  std::cout << "\nFigure 4(c) - users identified vs access interval\n"
               "(paper: both patterns detect ~107 users at 1 s, dropping with\n"
               "the interval)\n\n";
  util::ConsoleTable detected_table(
      {"interval (s)", "pattern 1 identified", "pattern 2 identified"});
  // ---- (d) which pattern is strictly faster --------------------------
  util::ConsoleTable faster_table(
      {"interval (s)", "pattern 2 faster", "pattern 1 faster", "tie"});
  for (const std::int64_t interval : {1LL, 10LL, 60LL, 600LL, 3600LL}) {
    int p1_count = 0;
    int p2_count = 0;
    int p2_faster = 0;
    int p1_faster = 0;
    int tie = 0;
    for (std::size_t u = 0; u < users; ++u) {
      privacy::DetectionOutcome p1;
      privacy::DetectionOutcome p2;
      if (interval == 1) {
        // Reuse the sweep from (a).
        p1.detected = p1_detected[u];
        p1.fraction = p1_fraction[u];
        p2.detected = p2_detected[u];
        p2.fraction = p2_fraction[u];
      } else {
        p1 = analyzer.earliest_identification(u, privacy::Pattern::kVisits, interval);
        p2 = analyzer.earliest_identification(u, privacy::Pattern::kMovements,
                                              interval);
      }
      if (p1.detected) ++p1_count;
      if (p2.detected) ++p2_count;
      if (p1.detected && p2.detected) {
        if (p2.fraction < p1.fraction) ++p2_faster;
        else if (p1.fraction < p2.fraction) ++p1_faster;
        else ++tie;
      }
    }
    detected_table.add_row({std::to_string(interval), std::to_string(p1_count),
                            std::to_string(p2_count)});
    faster_table.add_row({std::to_string(interval), std::to_string(p2_faster),
                          std::to_string(p1_faster), std::to_string(tie)});
  }
  detected_table.print(std::cout);
  std::cout << "\nFigure 4(d) - faster pattern per user (paper at 1 s: pattern 2\n"
               "faster for 71 users, pattern 1 for 14)\n\n";
  faster_table.print(std::cout);

  // ---- prior-work baseline: Zang & Bolot top-N locations -------------
  std::cout << "\nPrior-work baseline (Zang & Bolot, the paper's [35]), on a\n"
               "co-located corpus (6 users per home building, so the top-1\n"
               "region alone cannot separate co-residents):\n\n";
  {
    mobility::DatasetConfig co_located;
    co_located.user_count = 48;
    co_located.synthesis.days = 8;
    co_located.users_per_home = 6;
    const core::PrivacyAnalyzer shared = core::PrivacyAnalyzer::from_synthetic(
        core::experiment_analyzer_config(), co_located);
    std::vector<privacy::UserProfileHistograms> profiles;
    profiles.reserve(shared.user_count());
    for (std::size_t u = 0; u < shared.user_count(); ++u) {
      privacy::UserProfileHistograms profile;
      profile.user_id = shared.reference(u).user_id;
      profile.visits = shared.reference(u).visits;
      profile.movements = shared.reference(u).movements;
      profiles.push_back(std::move(profile));
    }
    util::ConsoleTable baseline({"identifier", "uniquely identified", "mean Deg_anon"});
    for (const std::size_t n : {1u, 2u, 3u}) {
      const privacy::TopNIdentifier identifier(profiles, n);
      int identified = 0;
      double anonymity = 0.0;
      for (std::size_t u = 0; u < shared.user_count(); ++u) {
        const auto& observed = shared.reference(u).visits;
        const auto matched = identifier.matches(observed);
        if (matched.size() == 1 && matched.front() == u) ++identified;
        anonymity += identifier.degree_of_anonymity(observed);
      }
      baseline.add_row(
          {"top-" + std::to_string(n) + " regions",
           std::to_string(identified) + "/" + std::to_string(shared.user_count()),
           util::format_fixed(anonymity / static_cast<double>(shared.user_count()),
                              3)});
    }
    baseline.print(std::cout);
    std::cout << "(Zang & Bolot's finding - anonymity collapses between top-1 and\n"
                 "top-2/3 - reproduces; the paper's movement pattern additionally\n"
                 "wins on *partial* traces, per the tables above.)\n";
  }
  return artifact_rc;
}
