// Storage-torture chaos bench: locprivd under a randomized (but seeded)
// sweep of StorageFaultPlans — EIO, sticky and recovering ENOSPC, short
// writes, lying fsyncs, failed renames — injected through the process-global
// FileOps layer, plus powered-off bit-rot planted directly in snapshot
// files between legs. Every seed must end in one of exactly two ways:
//
//   1. The run completes and its per-user audit rows are byte-identical to
//      the batch pipeline (faults were absorbed), or
//   2. the run exits through the error taxonomy (exit 3..8), after which
//      `scrub --repair` must restore the directory to a resumable state and
//      a clean resume must reach byte-identical rows — zero divergence.
//
// A silent wrong answer, an escape outside the taxonomy, or an unrepairable
// directory fails the bench. A final combined scenario stacks a SIGKILL'd
// shard, recovering ENOSPC, and newest-snapshot bit-rot in one run and
// demands recovery through the newest-two fallback. Output: console summary
// plus BENCH_storage.json — CI runs this reduced as `storage_torture_smoke`.
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "core/harness/atomic_file.hpp"
#include "core/harness/file_ops.hpp"
#include "mobility/synthesis.hpp"
#include "service/driver.hpp"
#include "service/locprivd.hpp"
#include "service/scrub.hpp"
#include "sim/faults/process_plan.hpp"
#include "util/args.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace {

using namespace locpriv;

namespace fs = std::filesystem;

/// xorshift64 — the same tiny generator FaultyFileOps uses; everything in
/// the sweep derives from (base seed, sweep index) so a seed reproduces.
std::uint64_t mix(std::uint64_t x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x == 0 ? 1 : x;
}

struct SweepConfig {
  mobility::DatasetConfig dataset;
  service::ServiceOptions options;
  service::TrafficOptions traffic;
  fs::path root;
};

/// One deterministic fault plan per sweep index: roughly a third of the
/// seeds target only snapshot publishes (the degraded-mode path), the rest
/// hit every durable write in the run dir, ledger included.
harness::StorageFaultPlan plan_for(std::uint64_t seed, const fs::path& run_dir) {
  harness::StorageFaultPlan plan;
  plan.seed = seed;
  std::uint64_t r = mix(seed * 0x9E3779B97F4A7C15ull + 1);
  plan.path_filter = (r % 3 == 0) ? std::string(".snap.") : run_dir.string();
  r = mix(r);
  switch (r % 4) {
    case 0:
      plan.eio_at_op = 1 + (mix(r) % 12);
      break;
    case 1:
      plan.enospc_at_op = 1 + (mix(r) % 6);
      plan.enospc_recover_after = mix(r + 1) % 6;  // 0 = sticky.
      break;
    case 2:
      plan.short_write_prob = (mix(r) % 2 == 0) ? 1.0 : 0.3;
      break;
    default:
      plan.drop_tail_at_fsync = 1 + (mix(r) % 6);
      break;
  }
  if (mix(r + 2) % 5 == 0) plan.rename_fail_at = 1 + (mix(r + 3) % 3);
  return plan;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Plants powered-off bit-rot: flips one byte in shard0's newest snapshot,
/// but only when an older one remains for the newest-two fallback to use.
bool rot_newest_snapshot(const fs::path& run_dir) {
  std::vector<fs::path> snaps;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(run_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard0.snap.", 0) == 0) snaps.push_back(entry.path());
  }
  if (snaps.size() < 2) return false;
  const auto seq_of = [](const fs::path& snap) {
    // "<shard>.snap.<seq>.dat" — lexicographic order lies past seq 9.
    const std::string name = snap.filename().string();
    const std::size_t mark = name.find(".snap.");
    return std::strtoull(name.c_str() + mark + 6, nullptr, 10);
  };
  fs::path newest = snaps.front();
  for (const fs::path& snap : snaps)
    if (seq_of(snap) > seq_of(newest)) newest = snap;
  std::string bytes = slurp(newest);
  if (bytes.size() < 2) return false;
  bytes[bytes.size() / 2] ^= 0x10;
  // locpriv-lint: allow(raw-write) bit-rot planted on purpose, bypassing the checked writer.
  std::ofstream out(newest, std::ios::binary | std::ios::trunc);
  out << bytes;
  return true;
}

struct SeedOutcome {
  bool completed = false;  ///< Leg 1 finished drain without an Error.
  int exit = 0;            ///< Taxonomy exit code when !completed.
  bool parity_ok = false;  ///< Rows byte-identical (whichever leg finished).
  bool resumable = false;  ///< Scrub verdict after repair.
  bool rotted = false;
  bool resumed = false;
  harness::InjectedFaults injected;
};

/// Drives one full schedule and returns the audit rows; throws the
/// service's own taxonomy errors through.
std::vector<std::vector<std::string>> run_leg(const SweepConfig& config,
                                              const core::PrivacyAnalyzer& analyzer,
                                              const fs::path& run_dir,
                                              bool resume) {
  service::LocprivService daemon(config.options, analyzer, run_dir, resume);
  service::drive_traffic(daemon, analyzer, config.traffic);
  auto rows = daemon.collect_reports();
  daemon.drain();
  return rows;
}

SeedOutcome torture_one(const SweepConfig& config,
                        const core::PrivacyAnalyzer& analyzer,
                        const std::vector<std::vector<std::string>>& reference,
                        std::uint64_t seed) {
  SeedOutcome outcome;
  const fs::path run_dir = config.root / ("seed_" + std::to_string(seed));
  fs::remove_all(run_dir);
  const harness::StorageFaultPlan plan = plan_for(seed, run_dir);
  harness::FaultyFileOps faulty(plan);
  {
    harness::ScopedFileOps scoped(&faulty);
    try {
      outcome.parity_ok = run_leg(config, analyzer, run_dir, false) == reference;
      outcome.completed = true;
    } catch (const Error& error) {
      outcome.exit = error.exit_code();
    }
  }
  outcome.injected = faulty.injected();

  // Between-legs bit-rot on a third of the seeds: the scrubber must catch
  // it (the run-time fault plan cannot — the bytes were written honestly).
  if (seed % 3 == 1) outcome.rotted = rot_newest_snapshot(run_dir);

  // Repair with the disk healthy again. A directory the service never got a
  // ledger into is vacuously fine — the resume leg starts fresh.
  const bool has_ledger = fs::exists(run_dir / "ledger.jsonl");
  if (has_ledger) {
    const service::ScrubReport report = service::scrub_run_dir(run_dir, true);
    outcome.resumable = report.resumable;
  } else {
    outcome.resumable = true;
  }

  // Anything short of a clean first leg must recover: resume over the
  // repaired directory, re-drive the identical schedule (dedupe drops what
  // the snapshots already cover), and demand byte parity.
  if (outcome.resumable && (!outcome.completed || outcome.rotted)) {
    outcome.resumed = true;
    outcome.parity_ok =
        run_leg(config, analyzer, run_dir, has_ledger) == reference;
  }
  fs::remove_all(run_dir);
  return outcome;
}

/// The acceptance scenario: a SIGKILL'd shard incarnation, recovering
/// ENOSPC on snapshot publishes, and newest-snapshot bit-rot planted after
/// the run — recovery must come through the newest-two fallback with zero
/// metric divergence.
bool combined_scenario(SweepConfig config,
                       const core::PrivacyAnalyzer& analyzer) {
  const fs::path run_dir = config.root / "combined";
  fs::remove_all(run_dir);
  config.options.fault_plan = sim::ProcessFaultPlan::parse("crash:1@shard0");
  config.options.fault_after_batches = 12;
  // Paced traffic and a tight cadence so every shard fills its newest-two
  // retention window (the bit-rot leg needs a fallback snapshot to exist).
  config.options.snapshot_interval = std::chrono::milliseconds(20);
  config.traffic.pace = std::chrono::milliseconds(3);
  config.traffic.rounds = 2;
  // The schedule changed (two rounds): this scenario has its own oracle.
  const std::vector<std::vector<std::string>> reference =
      service::batch_reference_rows(analyzer, config.options.interval_s,
                                    config.traffic);

  harness::StorageFaultPlan plan;
  plan.seed = 1;
  plan.path_filter = ".snap.";
  plan.enospc_at_op = 2;
  plan.enospc_recover_after = 2;
  harness::FaultyFileOps faulty(plan);
  bool first_leg_ok = false;
  {
    harness::ScopedFileOps scoped(&faulty);
    try {
      first_leg_ok = run_leg(config, analyzer, run_dir, false) == reference;
    } catch (const Error& error) {
      std::cerr << "combined: first leg exited " << error.exit_code() << " ("
                << error.what() << ")\n";
      return false;
    }
  }
  if (!first_leg_ok) {
    std::cerr << "combined: first leg diverged from the batch pipeline\n";
    return false;
  }
  if (!rot_newest_snapshot(run_dir)) {
    std::cerr << "combined: no snapshot pair to rot (run too short?)\n";
    return false;
  }
  const service::ScrubReport report = service::scrub_run_dir(run_dir, true);
  if (!report.resumable) {
    std::cerr << "combined: directory not resumable after scrub --repair\n";
    return false;
  }
  config.options.fault_plan = {};
  config.options.fault_after_batches = 0;
  const bool parity = run_leg(config, analyzer, run_dir, true) == reference;
  if (!parity) std::cerr << "combined: resumed leg diverged\n";
  fs::remove_all(run_dir);
  return parity;
}

int run(int argc, const char* const* argv) {
  util::Args args;
  args.declare("--users", "4");
  args.declare("--days", "1");
  args.declare("--seed", std::to_string(core::kDatasetSeed));
  args.declare("--seeds", "50");
  args.declare("--shards", "2");
  args.declare("--interval", "60");
  args.declare("--batch", "32");
  args.declare("--json", "BENCH_storage.json");
  args.declare_bool("--skip-combined");
  args.parse(argc, argv, 1);

  bench::print_header("storage torture: locprivd under injected disk faults",
                      /*uses_mobility_corpus=*/false);

  SweepConfig config;
  config.dataset.user_count = static_cast<int>(args.get_int("--users"));
  config.dataset.synthesis.days = static_cast<int>(args.get_int("--days"));
  config.dataset.seed = static_cast<std::uint64_t>(args.get_int("--seed"));
  const core::PrivacyAnalyzer analyzer = core::PrivacyAnalyzer::from_synthetic(
      core::experiment_analyzer_config(), config.dataset);

  config.options.shards = static_cast<unsigned>(args.get_int("--shards"));
  config.options.interval_s = args.get_int("--interval");
  config.options.seed = config.dataset.seed;
  config.options.scale = std::to_string(analyzer.user_count()) + "u_t" +
                         std::to_string(config.options.interval_s);
  config.options.heartbeat = std::chrono::milliseconds(50);
  config.options.ping_timeout = std::chrono::milliseconds(1000);
  config.options.term_grace = std::chrono::milliseconds(200);
  config.options.backoff_base = std::chrono::milliseconds(10);
  config.options.backoff_seed = config.dataset.seed;
  config.traffic.batch_size = static_cast<std::size_t>(args.get_int("--batch"));
  // Pace the sweep legs just enough for the snapshot cadence to fire, so
  // retention windows fill and the bit-rot seeds have something to rot.
  config.options.snapshot_interval = std::chrono::milliseconds(60);
  config.traffic.pace = std::chrono::milliseconds(1);
  config.root = fs::temp_directory_path() /
                ("bench_storage_" + std::to_string(::getpid()));
  fs::remove_all(config.root);
  fs::create_directories(config.root);

  const std::vector<std::vector<std::string>> reference =
      service::batch_reference_rows(analyzer, config.options.interval_s,
                                    config.traffic);

  const auto sweep_seeds = static_cast<std::uint64_t>(args.get_int("--seeds"));
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t clean_runs = 0, taxonomy_exits = 0, rogue_exits = 0;
  std::uint64_t parity_failures = 0, unrepairable = 0, resumed_runs = 0;
  std::uint64_t rot_planted = 0;
  harness::InjectedFaults totals;
  std::map<int, std::uint64_t> exits_by_code;
  for (std::uint64_t seed = 1; seed <= sweep_seeds; ++seed) {
    SeedOutcome outcome;
    try {
      outcome = torture_one(config, analyzer, reference, seed);
    } catch (const std::exception& error) {
      // The clean legs (scrub, resume) must not throw at all.
      std::cerr << "seed " << seed << ": escaped the taxonomy: "
                << error.what() << '\n';
      ++rogue_exits;
      continue;
    }
    if (outcome.completed) {
      ++clean_runs;
    } else if (outcome.exit >= 3 && outcome.exit <= 8) {
      ++taxonomy_exits;
      ++exits_by_code[outcome.exit];
    } else {
      std::cerr << "seed " << seed << ": exit " << outcome.exit
                << " is outside the error taxonomy\n";
      ++rogue_exits;
    }
    if (!outcome.resumable) {
      std::cerr << "seed " << seed << ": not resumable after scrub --repair\n";
      ++unrepairable;
    } else if (!outcome.parity_ok) {
      std::cerr << "seed " << seed << ": audit rows diverged\n";
      ++parity_failures;
    }
    if (outcome.rotted) ++rot_planted;
    if (outcome.resumed) ++resumed_runs;
    totals.eio += outcome.injected.eio;
    totals.enospc += outcome.injected.enospc;
    totals.short_writes += outcome.injected.short_writes;
    totals.dropped_tails += outcome.injected.dropped_tails;
    totals.rename_failures += outcome.injected.rename_failures;
    totals.bit_flips += outcome.injected.bit_flips;
  }
  const bool combined_ok =
      args.get_bool("--skip-combined") || combined_scenario(config, analyzer);
  const double duration_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();

  std::cout << "sweep: " << sweep_seeds << " seeds in "
            << util::format_fixed(duration_s, 1) << "s — " << clean_runs
            << " absorbed, " << taxonomy_exits << " taxonomy exits, "
            << rogue_exits << " rogue\n"
            << "faults injected: " << totals.eio << " eio, " << totals.enospc
            << " enospc, " << totals.short_writes << " short writes, "
            << totals.dropped_tails << " dropped tails, "
            << totals.rename_failures << " failed renames\n"
            << "recovery: " << rot_planted << " rotted snapshots, "
            << resumed_runs << " resumed runs, " << unrepairable
            << " unrepairable, " << parity_failures << " parity failures\n";
  for (const auto& [code, count] : exits_by_code)
    std::cout << "  exit " << code << ": " << count << " seeds\n";

  const bool faults_fired = totals.total() > 0;
  const bool ok = rogue_exits == 0 && parity_failures == 0 &&
                  unrepairable == 0 && combined_ok && faults_fired;
  {
    util::JsonWriter json;
    json.begin_object();
    bench::write_bench_header(json, "storage_torture");
    json.member("users", static_cast<std::int64_t>(analyzer.user_count()));
    json.member("days",
                static_cast<std::int64_t>(config.dataset.synthesis.days));
    json.member("shards", static_cast<std::int64_t>(config.options.shards));
    json.member("sweep_seeds", static_cast<std::int64_t>(sweep_seeds));
    json.member("duration_s", duration_s);
    json.member("clean_runs", static_cast<std::int64_t>(clean_runs));
    json.member("taxonomy_exits", static_cast<std::int64_t>(taxonomy_exits));
    json.member("rogue_exits", static_cast<std::int64_t>(rogue_exits));
    json.member("resumed_runs", static_cast<std::int64_t>(resumed_runs));
    json.member("rotted_snapshots", static_cast<std::int64_t>(rot_planted));
    json.member("unrepairable", static_cast<std::int64_t>(unrepairable));
    json.member("parity_failures",
                static_cast<std::int64_t>(parity_failures));
    json.member("injected_eio", static_cast<std::int64_t>(totals.eio));
    json.member("injected_enospc", static_cast<std::int64_t>(totals.enospc));
    json.member("injected_short_writes",
                static_cast<std::int64_t>(totals.short_writes));
    json.member("injected_dropped_tails",
                static_cast<std::int64_t>(totals.dropped_tails));
    json.member("injected_rename_failures",
                static_cast<std::int64_t>(totals.rename_failures));
    json.member("combined_scenario_ok", combined_ok);
    json.member("ok", ok);
    json.end_object();
    harness::AtomicFileWriter out(args.get("--json"));
    out.stream() << json.str() << '\n';
    out.commit();
    std::cout << "json -> " << args.get("--json") << '\n';
  }
  std::error_code ec;
  fs::remove_all(config.root, ec);

  if (!ok) {
    std::cerr << "FAIL: storage faults escaped the "
                 "byte-parity-or-taxonomy-exit contract\n";
    return 1;
  }
  std::cout << "\nOK: every seed either absorbed its faults with byte parity "
               "or exited the taxonomy and recovered via scrub + resume\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return error.exit_code();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return exit_code(ErrorCode::kInternal);
  }
}
