// E12 — LPPM defense comparison: every defense in the standard suite scored
// on privacy (PoI recovery, identification, anonymity) and utility
// (positional error, release volume) against a 1 s background app — the
// strongest attacker the market study observed.
#include <iostream>

#include "bench_common.hpp"
#include "core/defense_eval.hpp"
#include "mobility/synthesis.hpp"

int main() {
  using namespace locpriv;
  bench::print_header("E12: LPPM defenses vs the 1 s background app",
                      /*uses_mobility_corpus=*/true);

  const core::PrivacyAnalyzer& analyzer = core::shared_analyzer();
  const auto& dataset = core::shared_dataset();

  // Cloaking anchors: every user's true home (the population density the
  // k-anonymity cloak needs).
  std::vector<geo::LatLon> homes;
  homes.reserve(dataset.profiles.size());
  for (const auto& profile : dataset.profiles)
    homes.push_back(dataset.poi_position(profile.home_poi()));

  const auto suite = lppm::standard_suite(dataset.city_config.anchor, homes);

  util::ConsoleTable table({"defense", "PoI_total", "PoI_sens", "identified (p2)",
                            "mean Deg_anon", "mean err (m)", "released"});
  for (const auto& defense : suite) {
    const core::DefenseOutcome outcome =
        core::evaluate_defense(analyzer, *defense, /*interval_s=*/1,
                               /*seed=*/core::kDatasetSeed ^ 0xdefULL);
    table.add_row({outcome.defense,
                   util::format_percent(outcome.poi_total_fraction, 1),
                   util::format_percent(outcome.poi_sensitive_fraction, 1),
                   std::to_string(outcome.users_identified) + "/" +
                       std::to_string(analyzer.user_count()),
                   util::format_fixed(outcome.mean_anonymity, 3),
                   util::format_fixed(outcome.mean_position_error_m, 0),
                   util::format_percent(outcome.release_ratio, 0)});
  }
  table.print(std::cout);

  std::cout <<
      "\nReading the trade-off: snapping/cloaking buy privacy with positional\n"
      "error; throttling buys it with volume at perfect accuracy; suppressing\n"
      "every home hides the chains' anchor yet amenity-to-amenity patterns\n"
      "still identify a quarter of the users. The identification column shows\n"
      "which defenses actually break the paper's attack rather than merely\n"
      "blurring the map.\n";
  return bench::export_table("defenses", table);
}
