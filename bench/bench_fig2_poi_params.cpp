// E4 — Table III + Figure 2: PoIs extracted from the full-rate traces under
// the six (visiting time, radius) parameter combinations, plus the corpus
// statistics that stand in for the Geolife characteristics the paper cites.
#include <iostream>

#include "bench_common.hpp"
#include "poi/clustering.hpp"
#include "poi/staypoint.hpp"
#include "trace/trace_stats.hpp"

int main() {
  using namespace locpriv;
  bench::print_header("E4: Table III / Figure 2 - PoIs vs extraction parameters",
                      /*uses_mobility_corpus=*/true);

  const auto& dataset = core::shared_dataset();

  // Corpus sanity next to the paper's Geolife description.
  const trace::DatasetStats stats = trace::compute_dataset_stats(dataset.users);
  std::cout << "Synthetic Geolife-like corpus:\n";
  bench::print_comparison("users", "182",
                          std::to_string(stats.user_count));
  bench::print_comparison("fixes sampled every 1-5 s", "~91%",
                          util::format_percent(stats.high_frequency_fraction, 1));
  bench::print_comparison("trajectories", "17,621 (full Geolife)",
                          std::to_string(stats.trajectory_count));
  bench::print_comparison("total distance", "~1.2M km (full Geolife)",
                          util::format_fixed(stats.total_length_km, 0) + " km");

  // Figure 2: total stay points extracted per parameter set, and the PoIs
  // (clustered places) they induce.
  std::cout << "\nFigure 2 - extraction under Table III parameter sets:\n\n";
  util::ConsoleTable table({"set", "visit (min)", "radius (m)", "stay points",
                            "PoIs (clustered)", "vs set 1"});
  const auto sets = poi::table3_parameter_sets();
  std::size_t set1_stays = 0;
  for (std::size_t s = 0; s < sets.size(); ++s) {
    std::size_t stays_total = 0;
    std::size_t pois_total = 0;
    for (const auto& user : dataset.users) {
      const auto points = user.flattened();
      const auto stays = poi::extract_stay_points(points, sets[s]);
      stays_total += stays.size();
      pois_total += poi::cluster_stay_points(stays, sets[s].radius_m).size();
    }
    if (s == 0) set1_stays = stays_total;
    table.add_row({std::to_string(s + 1),
                   std::to_string(sets[s].min_visit_s / 60),
                   util::format_fixed(sets[s].radius_m, 0),
                   std::to_string(stays_total), std::to_string(pois_total),
                   util::format_percent(static_cast<double>(stays_total) /
                                            static_cast<double>(set1_stays),
                                        1)});
  }
  table.print(std::cout);

  std::cout <<
      "\nPaper shape checks: (i) under the same radius, fewer PoIs as the\n"
      "visiting time grows; (ii) under the same visiting time, more PoIs with\n"
      "the larger radius; (iii) the visiting time dominates the radius.\n";
  return bench::export_table("fig2_poi_params", table);
}
