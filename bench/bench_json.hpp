// Standardized header for every BENCH_*.json artifact. Benches across PRs
// are only comparable when each result records what produced it, so every
// bench opens its JSON object with write_bench_header(): schema version,
// bench name, git SHA and build type (baked in by bench/CMakeLists.txt),
// sanitizer config, reduced-scale flag, and a UTC timestamp. Perf-tracking
// tooling keys on these fields; bench-specific members follow after.
#pragma once

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <string>

#include "util/json.hpp"

// Baked in by the build (see bench/CMakeLists.txt); the fallbacks keep
// non-CMake builds (clangd, fuzz drivers) compiling.
#ifndef LOCPRIV_GIT_SHA
#define LOCPRIV_GIT_SHA "unknown"
#endif
#ifndef LOCPRIV_BUILD_TYPE
#define LOCPRIV_BUILD_TYPE "unknown"
#endif
#ifndef LOCPRIV_SANITIZE_FLAGS
#define LOCPRIV_SANITIZE_FLAGS "none"
#endif

namespace locpriv::bench {

/// Wall-clock timestamp (UTC, ISO-8601). Only stamped into artifacts for
/// humans reading them later; nothing in a bench derives behaviour from it.
inline std::string utc_timestamp() {
  const std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm parts{};
  ::gmtime_r(&now, &parts);
  char buffer[32];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%dT%H:%M:%SZ", &parts);
  return buffer;
}

/// Emits the shared header members into an already-open JSON object. Call
/// immediately after json.begin_object(), before any bench-specific fields.
inline void write_bench_header(util::JsonWriter& json,
                               const std::string& bench_name) {
  json.member("schema_version", 1);
  json.member("bench", bench_name);
  json.member("git_sha", LOCPRIV_GIT_SHA);
  json.member("build_type", LOCPRIV_BUILD_TYPE);
  json.member("sanitize", LOCPRIV_SANITIZE_FLAGS);
  json.member("reduced_scale",
              std::getenv("LOCPRIV_REDUCED_SCALE") != nullptr);
  json.member("timestamp_utc", utc_timestamp());
}

}  // namespace locpriv::bench
