// E13 — What Android 8's background location limits (post-paper policy) do
// to the paper's attack surface: rerun the dynamic market measurement on a
// device enforcing the throttle, and requantify the PoI exposure of the
// same 102 background apps.
//
// This addresses the paper's dated-substrate critique head on: the §III
// population is unchanged, only the OS policy differs.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "market/catalog.hpp"
#include "market/study.hpp"
#include "privacy/metrics.hpp"
#include "stats/histogram.hpp"

int main() {
  using namespace locpriv;
  bench::print_header(
      "E13: Android 8 background limits vs the paper's Android 4.4 testbed",
      /*uses_mobility_corpus=*/true);

  constexpr std::int64_t kOThrottle = 1800;  // "A few times each hour".

  market::CatalogConfig config;
  config.seed = core::kCatalogSeed;
  const market::Catalog catalog = market::generate_catalog(config);
  const market::MarketReport before = market::run_market_study(catalog, 7);
  const market::MarketReport after =
      market::run_market_study(catalog, 7, kOThrottle);

  std::cout << "Dynamic stage rerun with the O policy (throttle "
            << kOThrottle << " s):\n\n";
  util::ConsoleTable policy({"quantity", "Android 4.4 (paper)", "Android 8 policy"});
  policy.add_row({"apps accessing location in background",
                  std::to_string(before.background), std::to_string(after.background)});
  const auto median = [](std::vector<std::int64_t> values) {
    std::sort(values.begin(), values.end());
    return values.empty() ? std::int64_t{0} : values[values.size() / 2];
  };
  policy.add_row({"median observed background interval",
                  std::to_string(median(before.background_intervals)) + " s",
                  std::to_string(median(after.background_intervals)) + " s"});
  const auto share_fast = [](const std::vector<std::int64_t>& values) {
    std::size_t fast = 0;
    for (const auto v : values)
      if (v <= 60) ++fast;
    return util::format_percent(
        values.empty() ? 0.0
                       : static_cast<double>(fast) / static_cast<double>(values.size()),
        1);
  };
  policy.add_row({"apps updating within 60 s", share_fast(before.background_intervals),
                  share_fast(after.background_intervals)});
  policy.print(std::cout);

  // Privacy consequence: PoI exposure of each population, weighting users
  // equally and apps by their observed background interval.
  const core::PrivacyAnalyzer& analyzer = core::shared_analyzer();
  const double radius = analyzer.config().extraction.radius_m;
  const auto exposure_for = [&](const std::vector<std::int64_t>& intervals) {
    // Evaluate each distinct interval once, then average over apps.
    std::vector<std::int64_t> distinct = intervals;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
    std::map<std::int64_t, double> fraction_by_interval;
    for (const std::int64_t interval : distinct) {
      std::size_t reference = 0;
      std::size_t recovered = 0;
      for (std::size_t u = 0; u < analyzer.user_count(); ++u) {
        const auto pois = analyzer.collected_pois(u, interval);
        const auto recovery =
            privacy::poi_recovery(analyzer.reference(u).pois, pois, radius);
        reference += recovery.reference_count;
        recovered += recovery.recovered_count;
      }
      fraction_by_interval[interval] =
          static_cast<double>(recovered) / static_cast<double>(reference);
    }
    double total = 0.0;
    for (const std::int64_t interval : intervals)
      total += fraction_by_interval[interval];
    return total / static_cast<double>(intervals.size());
  };

  std::cout << "\nMean share of a user's PoIs the background population recovers:\n";
  bench::print_comparison("Android 4.4 population", "-",
                          util::format_percent(exposure_for(before.background_intervals), 1));
  bench::print_comparison("Android 8-throttled population", "-",
                          util::format_percent(exposure_for(after.background_intervals), 1));

  std::cout <<
      "\nThe throttle does not reduce *which* apps listen in background (the\n"
      "registrations survive) but collapses their sampling rate to the\n"
      "policy interval, pushing every app past the Figure 3 knee. The\n"
      "paper's headline risk is a property of the pre-O platform.\n";
  return bench::export_table("android_limits_policy", policy);
}
