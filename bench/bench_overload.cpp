// locprivd overload: the service at several times its sustainable rate with
// one wedged shard. Phase A calibrates: a fault-free lossless drive over
// the same corpus measures the sustainable end-to-end batch rate. Phase B
// then offers traffic as fast as the scheduler allows while shard0
// busy-hangs ignoring SIGTERM, with shed-mode admission for most users and
// a lossless subset driven with blocking backpressure (--lossless-every),
// mirroring production: synthetic load sheds, corpus ingestion never loses
// data. Because the wedged shard absorbs nothing while its credit window is
// exhausted, demand on it must reach at least --overload-factor x what it
// accepted (asserted); the wall-clock offered/sustainable ratio is also
// reported for the whole service.
//
// What it proves, each a hard exit-1 assertion:
//   - bounded memory: parent ru_maxrss under --max-rss-mb, retained replay
//     bytes under the configured cap (+ one frame of slack), pending ops
//     under the credit window + control-op allowance;
//   - exact shed accounting: offered == accepted + deduped + shed, globally
//     and per user;
//   - overload was real: batches were shed and the wedged shard died at
//     least once;
//   - non-shed users' audit rows stay byte-identical to the batch pipeline
//     (and the non-shed set is non-empty, so the parity claim is not
//     vacuous).
// Results land in BENCH_overload.json with the standardized header. CI runs
// this reduced as the `overload_smoke` chaos test.
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "core/harness/atomic_file.hpp"
#include "mobility/synthesis.hpp"
#include "service/driver.hpp"
#include "service/locprivd.hpp"
#include "sim/faults/process_plan.hpp"
#include "util/args.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace {

using namespace locpriv;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Peak resident set of this process (parent only; the shards are separate
/// processes and their memory is bounded by RLIMIT_AS / their own caps).
std::size_t max_rss_bytes() {
  struct rusage usage {};
  ::getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB on Linux.
}

service::ServiceOptions base_options(const core::PrivacyAnalyzer& analyzer,
                                     const util::Args& args) {
  service::ServiceOptions options;
  options.shards = static_cast<unsigned>(args.get_int("--shards"));
  options.interval_s = args.get_int("--interval");
  options.seed = static_cast<std::uint64_t>(args.get_int("--seed"));
  options.scale = std::to_string(analyzer.user_count()) + "u_t" +
                  std::to_string(options.interval_s);
  options.heartbeat = std::chrono::milliseconds(100);
  options.ping_timeout = std::chrono::milliseconds(1000);
  options.term_grace = std::chrono::milliseconds(500);
  options.snapshot_interval =
      std::chrono::milliseconds(args.get_int("--snapshot-every-ms"));
  options.backoff_base = std::chrono::milliseconds(50);
  options.backoff_seed = options.seed;
  options.max_inflight_batches =
      static_cast<std::size_t>(args.get_int("--max-inflight-batches"));
  options.max_retained_bytes =
      static_cast<std::size_t>(args.get_int("--max-retained-kb")) * 1024;
  options.shed_policy = args.get("--shed-policy") == "drop-oldest"
                            ? service::ShedPolicy::kDropOldest
                            : service::ShedPolicy::kRejectNew;
  return options;
}

int run(int argc, const char* const* argv) {
  util::Args args;
  args.declare("--users", "6");
  args.declare("--days", "2");
  args.declare("--seed", std::to_string(core::kDatasetSeed));
  args.declare("--shards", "3");
  args.declare("--interval", "60");
  args.declare("--batch", "32");
  args.declare("--snapshot-every-ms", "250");
  args.declare("--max-inflight-batches", "8");
  args.declare("--max-retained-kb", "1024");
  args.declare("--shed-policy", "reject-new");
  args.declare("--fault-shards", "hang:2@shard0");
  args.declare("--fault-after", "20");
  args.declare("--lossless-every", "3");
  args.declare("--overload-factor", "4");
  args.declare("--max-rss-mb", "2048");
  args.declare("--run-dir", "");
  args.declare("--json", "BENCH_overload.json");
  args.parse(argc, argv, 1);

  bench::print_header("locprivd overload: bounded queues and load shedding",
                      /*uses_mobility_corpus=*/false);

  mobility::DatasetConfig dataset;
  dataset.user_count = static_cast<int>(args.get_int("--users"));
  dataset.synthesis.days = static_cast<int>(args.get_int("--days"));
  dataset.seed = static_cast<std::uint64_t>(args.get_int("--seed"));
  const core::PrivacyAnalyzer analyzer = core::PrivacyAnalyzer::from_synthetic(
      core::experiment_analyzer_config(), dataset);

  std::filesystem::path base_dir = args.get("--run-dir");
  if (base_dir.empty())
    base_dir = std::filesystem::temp_directory_path() /
               ("bench_overload_" + std::to_string(::getpid()));
  std::filesystem::remove_all(base_dir);

  service::TrafficOptions traffic;
  traffic.batch_size = static_cast<std::size_t>(args.get_int("--batch"));
  traffic.rounds = 1;

  // ---- Phase A: calibrate the sustainable rate (no faults, lossless). ----
  double sustainable_batches_per_s = 0.0;
  {
    const auto options = base_options(analyzer, args);
    service::LocprivService daemon(options, analyzer, base_dir / "calibrate",
                                   /*resume=*/false);
    const auto start = std::chrono::steady_clock::now();
    const service::TrafficOutcome outcome =
        service::drive_traffic(daemon, analyzer, traffic);
    daemon.drain();
    const double duration_s = std::max(seconds_since(start), 1e-6);
    sustainable_batches_per_s =
        static_cast<double>(outcome.accepted) / duration_s;
    std::cout << "calibration: " << outcome.accepted << " batches in "
              << util::format_fixed(duration_s, 2) << "s ("
              << util::format_fixed(sustainable_batches_per_s, 0)
              << " batches/s sustainable)\n";
  }

  // ---- Phase B: overload with one wedged shard. ----
  auto options = base_options(analyzer, args);
  options.fault_plan = sim::ProcessFaultPlan::parse(args.get("--fault-shards"));
  options.fault_after_batches = static_cast<int>(args.get_int("--fault-after"));

  auto overload = traffic;
  overload.may_shed = true;
  overload.lossless_every =
      static_cast<std::size_t>(args.get_int("--lossless-every"));
  // Offered as fast as the loop runs: shedding makes rejected offers nearly
  // free, so the offered rate lands far above the calibrated sustainable
  // rate; the factor is measured and asserted below rather than paced.
  overload.pace = std::chrono::milliseconds(0);

  service::LocprivService daemon(options, analyzer, base_dir / "overload",
                                 /*resume=*/false);
  const auto start = std::chrono::steady_clock::now();
  const service::TrafficOutcome outcome =
      service::drive_traffic(daemon, analyzer, overload);
  const double offered_duration_s = std::max(seconds_since(start), 1e-6);
  const auto rows = daemon.collect_reports();
  daemon.drain();

  const service::ServiceStats& stats = daemon.stats();
  const double offered_per_s =
      static_cast<double>(stats.batches_offered) / offered_duration_s;
  const double overload_factor = sustainable_batches_per_s > 0.0
                                     ? offered_per_s / sustainable_batches_per_s
                                     : 0.0;
  // Demand concentrates on the wedged shard: while it is hung its credit
  // window stays exhausted, so offers keep arriving against ~zero absorption.
  // The peak per-shard offered/accepted ratio is the overload the flow
  // control actually had to contain.
  double peak_shard_demand = 0.0;
  for (unsigned k = 0; k < options.shards; ++k) {
    const service::ShardLoad load = daemon.shard_load(k);
    const double demand = static_cast<double>(load.offered) /
                          static_cast<double>(std::max<std::size_t>(
                              load.accepted, 1));
    peak_shard_demand = std::max(peak_shard_demand, demand);
  }
  const double overload_target =
      static_cast<double>(args.get_int("--overload-factor"));

  // Users to exclude from the parity oracle: anyone shed, plus anyone on a
  // quarantined shard. Everyone else must be byte-identical.
  std::vector<std::string> ignore = daemon.shed_users();
  for (std::size_t i = 0; i < analyzer.user_count(); ++i) {
    const std::string& user = analyzer.reference(i).user_id;
    const std::string owner =
        service::LocprivService::shard_name(daemon.shard_of(user));
    for (const std::string& bad : daemon.quarantined_shards())
      if (owner == bad) ignore.push_back(user);
  }
  std::size_t parity_users = 0;
  for (std::size_t i = 0; i < analyzer.user_count(); ++i)
    if (std::find(ignore.begin(), ignore.end(),
                  analyzer.reference(i).user_id) == ignore.end())
      ++parity_users;
  const std::vector<std::string> mismatched = service::parity_mismatches(
      analyzer, options.interval_s, traffic, rows, ignore);

  // Reconciliation: every offer is accounted for, exactly once, globally
  // and per user (a fresh run has no resume dedupe, so dropped == deduped).
  const bool global_reconciles =
      stats.batches_offered ==
          stats.batches_submitted + stats.batches_dropped + stats.batches_shed &&
      outcome.batches == outcome.accepted + outcome.deduped + outcome.shed &&
      stats.batches_shed ==
          stats.shed_reject_new + stats.shed_drop_oldest + stats.shed_quarantined;
  bool users_reconcile = true;
  for (const auto& [user, load] : daemon.user_loads())
    if (load.batches_offered != load.batches_accepted + load.batches_shed) {
      users_reconcile = false;
      std::cerr << "  user " << user << ": offered " << load.batches_offered
                << " != accepted " << load.batches_accepted << " + shed "
                << load.batches_shed << '\n';
    }

  const std::size_t rss = max_rss_bytes();
  const std::size_t rss_cap =
      static_cast<std::size_t>(args.get_int("--max-rss-mb")) * 1024 * 1024;
  // Slack: one full batch frame can overshoot the byte cap at admission.
  const std::size_t retained_slack = 64 * 1024;
  const bool retained_ok =
      options.max_retained_bytes == 0 ||
      stats.retained_bytes_peak <= options.max_retained_bytes + retained_slack;
  // Control ops share the pending deque with acks: restore, ping, snapshot,
  // report can each be in flight alongside the windowed submits.
  const bool pending_ok =
      options.max_inflight_batches == 0 ||
      stats.pending_ops_peak <= options.max_inflight_batches + 4;
  const bool rss_ok = rss <= rss_cap;

  std::cout << "overload: " << stats.batches_offered << " offered ("
            << util::format_fixed(overload_factor, 1) << "x sustainable, "
            << util::format_fixed(peak_shard_demand, 1)
            << "x peak shard demand), "
            << stats.batches_submitted << " accepted, " << stats.batches_shed
            << " shed (" << stats.shed_reject_new << " reject-new, "
            << stats.shed_drop_oldest << " drop-oldest, "
            << stats.shed_quarantined << " quarantined)\n"
            << "caps: retained peak " << stats.retained_bytes_peak << "/"
            << options.max_retained_bytes << " bytes, pending peak "
            << stats.pending_ops_peak << "/" << options.max_inflight_batches
            << "+4 ops, outbuf peak " << stats.outbuf_bytes_peak
            << " bytes, rss " << rss / (1024 * 1024) << "/"
            << rss_cap / (1024 * 1024) << " MiB\n"
            << "wedge: " << stats.shard_deaths << " deaths, "
            << stats.respawns << " respawns, " << stats.snapshots
            << " snapshots (" << stats.forced_snapshots << " forced)\n"
            << "parity: " << parity_users << " non-shed users checked, "
            << mismatched.size() << " mismatched, " << ignore.size()
            << " excluded (shed or quarantined)\n";
  for (const std::string& user : mismatched)
    std::cout << "  MISMATCH " << user << '\n';

  const bool overloaded =
      stats.batches_shed > 0 && peak_shard_demand >= overload_target;
  const bool wedge_detected = stats.shard_deaths >= 1;
  const bool parity_ok = mismatched.empty() && parity_users > 0;

  {
    util::JsonWriter json;
    json.begin_object();
    bench::write_bench_header(json, "overload");
    json.member("users", static_cast<std::int64_t>(analyzer.user_count()));
    json.member("shards", static_cast<std::int64_t>(options.shards));
    json.member("max_inflight_batches",
                static_cast<std::int64_t>(options.max_inflight_batches));
    json.member("max_retained_bytes",
                static_cast<std::int64_t>(options.max_retained_bytes));
    json.member("shed_policy", args.get("--shed-policy"));
    json.member("sustainable_batches_per_s", sustainable_batches_per_s);
    json.member("offered_batches_per_s", offered_per_s);
    json.member("overload_factor", overload_factor);
    json.member("peak_shard_demand_factor", peak_shard_demand);
    json.member("overload_target", overload_target);
    json.member("batches_offered",
                static_cast<std::int64_t>(stats.batches_offered));
    json.member("batches_accepted",
                static_cast<std::int64_t>(stats.batches_submitted));
    json.member("batches_shed", static_cast<std::int64_t>(stats.batches_shed));
    json.member("shed_reject_new",
                static_cast<std::int64_t>(stats.shed_reject_new));
    json.member("shed_drop_oldest",
                static_cast<std::int64_t>(stats.shed_drop_oldest));
    json.member("shed_quarantined",
                static_cast<std::int64_t>(stats.shed_quarantined));
    json.member("blocked_waits",
                static_cast<std::int64_t>(stats.blocked_waits));
    json.member("retained_bytes_peak",
                static_cast<std::int64_t>(stats.retained_bytes_peak));
    json.member("pending_ops_peak",
                static_cast<std::int64_t>(stats.pending_ops_peak));
    json.member("outbuf_bytes_peak",
                static_cast<std::int64_t>(stats.outbuf_bytes_peak));
    json.member("parent_rss_bytes", static_cast<std::int64_t>(rss));
    json.member("shard_deaths", static_cast<std::int64_t>(stats.shard_deaths));
    json.member("respawns", static_cast<std::int64_t>(stats.respawns));
    json.member("snapshots", static_cast<std::int64_t>(stats.snapshots));
    json.member("forced_snapshots",
                static_cast<std::int64_t>(stats.forced_snapshots));
    json.member("parity_users", static_cast<std::int64_t>(parity_users));
    json.member("parity_ok", parity_ok);
    json.member("reconcile_ok", global_reconciles && users_reconcile);
    json.member("caps_ok", retained_ok && pending_ok && rss_ok);
    json.end_object();
    harness::AtomicFileWriter out(args.get("--json"));
    out.stream() << json.str() << '\n';
    out.commit();
    std::cout << "json -> " << args.get("--json") << '\n';
  }

  if (args.get("--run-dir").empty()) {
    std::error_code ec;
    std::filesystem::remove_all(base_dir, ec);
  }

  if (!retained_ok || !pending_ok || !rss_ok) {
    std::cerr << "FAIL: a flow-control cap did not hold (retained "
              << stats.retained_bytes_peak << ", pending "
              << stats.pending_ops_peak << ", rss " << rss << ")\n";
    return 1;
  }
  if (!global_reconciles || !users_reconcile) {
    std::cerr << "FAIL: shed accounting does not reconcile exactly\n";
    return 1;
  }
  if (!overloaded) {
    std::cerr << "FAIL: the run never overloaded (shed " << stats.batches_shed
              << ", peak shard demand "
              << util::format_fixed(peak_shard_demand, 2) << "x < target "
              << util::format_fixed(overload_target, 0) << "x)\n";
    return 1;
  }
  if (!wedge_detected) {
    std::cerr << "FAIL: the wedged shard was never detected and killed\n";
    return 1;
  }
  if (!parity_ok) {
    std::cerr << "FAIL: a non-shed user's metrics diverged from the batch "
                 "pipeline (or no user was left to check)\n";
    return 1;
  }
  if (outcome.interrupted) return exit_code(ErrorCode::kInterrupted);
  std::cout << "\nOK: caps held, shed accounting reconciled exactly, and "
               "non-shed users kept byte-identical metrics under "
            << util::format_fixed(peak_shard_demand, 1)
            << "x peak shard demand\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return error.exit_code();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return exit_code(ErrorCode::kInternal);
  }
}
