// E5/E6 — Figure 3: how the access interval of a background app affects
// (a) the PoIs it can extract, and (b) the sensitive PoIs (reference visit
// count <= 1 / 2 / 3) it can trace out. Also reproduces the two §IV.C
// headline sentences: "only around 1.8% PoIs can be extracted" at 7,200 s
// and "about 45.1% of apps can acquire all PoIs".
#include <iostream>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "market/catalog.hpp"
#include "market/study.hpp"
#include "poi/clustering.hpp"
#include "privacy/metrics.hpp"

int main() {
  using namespace locpriv;
  bench::print_header("E5/E6: Figure 3 - PoI exposure vs access interval",
                      /*uses_mobility_corpus=*/true);

  const core::PrivacyAnalyzer& analyzer = core::shared_analyzer();
  const core::AnalyzerConfig& config = analyzer.config();

  // Reference totals at full rate.
  std::size_t reference_total = 0;
  std::size_t reference_sensitive[3] = {0, 0, 0};
  for (std::size_t u = 0; u < analyzer.user_count(); ++u) {
    const auto& pois = analyzer.reference(u).pois;
    reference_total += pois.size();
    for (std::size_t k = 0; k < 3; ++k)
      reference_sensitive[k] += poi::sensitive_pois(pois, k + 1).size();
  }
  std::cout << "reference PoIs at 1 s ground truth: " << reference_total
            << " (paper: 9,061 on full Geolife)\n\n";

  bench::SeriesCsv csv("fig3_poi_frequency");
  csv.row({"interval_s", "recovered", "fraction", "sens1", "sens2", "sens3",
           "complete_users"});
  util::ConsoleTable table({"interval (s)", "PoIs recovered", "% of reference",
                            "sens<=1", "sens<=2", "sens<=3", "users w/ all PoIs"});
  double recovered_at_7200 = 0.0;
  std::vector<std::pair<std::int64_t, double>> complete_fraction_by_interval;
  for (const std::int64_t interval : core::access_interval_ladder()) {
    std::size_t recovered = 0;
    std::size_t sensitive_recovered[3] = {0, 0, 0};
    int complete_users = 0;
    for (std::size_t u = 0; u < analyzer.user_count(); ++u) {
      const auto collected = analyzer.collected_pois(u, interval);
      const auto& reference = analyzer.reference(u).pois;
      const auto recovery =
          privacy::poi_recovery(reference, collected, config.extraction.radius_m);
      recovered += recovery.recovered_count;
      if (recovery.complete()) ++complete_users;
      for (std::size_t k = 0; k < 3; ++k)
        sensitive_recovered[k] +=
            privacy::sensitive_poi_recovery(reference, collected,
                                            config.extraction.radius_m, k + 1)
                .recovered_count;
    }
    const double fraction =
        static_cast<double>(recovered) / static_cast<double>(reference_total);
    if (interval == 7200) recovered_at_7200 = fraction;
    complete_fraction_by_interval.emplace_back(
        interval,
        static_cast<double>(complete_users) / static_cast<double>(analyzer.user_count()));
    table.add_row({std::to_string(interval), std::to_string(recovered),
                   util::format_percent(fraction, 1),
                   std::to_string(sensitive_recovered[0]),
                   std::to_string(sensitive_recovered[1]),
                   std::to_string(sensitive_recovered[2]),
                   std::to_string(complete_users) + "/" +
                       std::to_string(analyzer.user_count())});
    csv.row({std::to_string(interval), std::to_string(recovered),
             util::format_fixed(fraction, 4), std::to_string(sensitive_recovered[0]),
             std::to_string(sensitive_recovered[1]),
             std::to_string(sensitive_recovered[2]), std::to_string(complete_users)});
  }
  table.print(std::cout);

  std::cout << '\n';
  bench::print_comparison("PoIs still extractable at 7,200 s", "~1.8%",
                          util::format_percent(recovered_at_7200, 1));

  // "45.1% of apps can acquire all PoIs": weight the per-interval complete
  // fraction by the measured Figure 1 interval distribution of the 102
  // background apps.
  market::CatalogConfig catalog_config;
  catalog_config.seed = core::kCatalogSeed;
  const market::MarketReport market =
      market::run_market_study(market::generate_catalog(catalog_config), 7);
  double complete_app_mass = 0.0;
  for (const std::int64_t app_interval : market.background_intervals) {
    // Nearest ladder point at or above the app's interval (conservative).
    double fraction = 0.0;
    for (const auto& [interval, complete] : complete_fraction_by_interval) {
      fraction = complete;
      if (interval >= app_interval) break;
    }
    complete_app_mass += fraction;
  }
  bench::print_comparison(
      "apps able to acquire all PoIs (weighted by Fig.1 intervals)", "~45.1%",
      util::format_percent(complete_app_mass /
                               static_cast<double>(market.background_intervals.size()),
                           1));
  return csv.commit();
}
