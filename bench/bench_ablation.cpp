// E11 — ablations over the design choices DESIGN.md calls out:
//
//  1. stay-point buffer window size (4 / 8 / 16 fixes) and the anchor-based
//     baseline extractor;
//  2. chi-square tail (upper = default vs the paper-literal lower tail);
//  3. unseen-key smoothing (0 = paper Formula 1 vs 0.5 Laplace);
//  4. posterior weighting (paper Formula 2 chi^2 vs inverse-chi^2);
//  5. the location-coarsening defense (grid snapping a la LP-Guardian /
//     truncation) vs what a 1 s background app still learns.
#include <array>
#include <iostream>

#include "bench_common.hpp"
#include "trace/sampling.hpp"
#include "core/analyzer.hpp"
#include "geo/projection.hpp"
#include "poi/clustering.hpp"
#include "privacy/detection.hpp"
#include "privacy/metrics.hpp"

namespace {

using namespace locpriv;

// Users identified (uniquely, at full trace, 1 s) under a given match config.
int identified_users(const core::PrivacyAnalyzer& analyzer,
                     const privacy::MatchParams& match, privacy::Pattern pattern) {
  int identified = 0;
  for (std::size_t u = 0; u < analyzer.user_count(); ++u) {
    const auto observed = privacy::observed_histogram(
        analyzer.reference(u).points, pattern, analyzer.config().extraction,
        analyzer.grid(), 1);
    if (observed.empty()) continue;
    const auto result = analyzer.adversary().identify(observed, pattern, match);
    if (result.matched.size() == 1 && result.matched[0] == u) ++identified;
  }
  return identified;
}

}  // namespace

int main() {
  bench::print_header("E11: ablations over the pipeline's design choices",
                      /*uses_mobility_corpus=*/true);

  const core::PrivacyAnalyzer& analyzer = core::shared_analyzer();
  const auto& dataset = core::shared_dataset();
  const double radius = analyzer.config().extraction.radius_m;
  int artifact_rc = 0;  // First failed CSV export wins the exit code.
  const auto export_rc = [&artifact_rc](const std::string& name,
                                        const locpriv::util::ConsoleTable& table) {
    const int rc = bench::export_table(name, table);
    if (artifact_rc == 0) artifact_rc = rc;
  };

  // ---- 1. extraction window / algorithm ------------------------------
  std::cout << "1) stay-point extraction: buffer window and algorithm\n\n";
  {
    util::ConsoleTable table({"extractor", "stays @1s", "stays @60s", "stays @600s"});
    const auto count_stays = [&](auto&& extract) {
      std::array<std::size_t, 3> totals{0, 0, 0};
      const std::int64_t intervals[3] = {1, 60, 600};
      for (const auto& user : dataset.users) {
        const auto points = user.flattened();
        for (int i = 0; i < 3; ++i) {
          const auto sampled =
              intervals[i] == 1 ? points : trace::decimate(points, intervals[i]);
          totals[static_cast<std::size_t>(i)] += extract(sampled).size();
        }
      }
      return totals;
    };
    for (const std::size_t window : {4u, 8u, 16u}) {
      poi::ExtractionParams params = analyzer.config().extraction;
      params.window_fixes = window;
      const auto totals = count_stays([&](const auto& pts) {
        return poi::extract_stay_points(pts, params);
      });
      table.add_row({"buffered, window=" + std::to_string(window),
                     std::to_string(totals[0]), std::to_string(totals[1]),
                     std::to_string(totals[2])});
    }
    {
      const poi::ExtractionParams params = analyzer.config().extraction;
      const auto totals = count_stays([&](const auto& pts) {
        return poi::extract_stay_points_anchor(pts, params);
      });
      table.add_row({"anchor baseline (Zheng)", std::to_string(totals[0]),
                     std::to_string(totals[1]), std::to_string(totals[2])});
    }
    table.print(std::cout);
    export_rc("ablation_extractors", table);
    std::cout << "small windows keep stays detectable from decimated traces;\n"
                 "the anchor baseline is noise-sensitive at full rate.\n\n";
  }

  // ---- 2-4. matcher variants -----------------------------------------
  std::cout << "2-4) matcher variants: users uniquely identified at 1 s\n\n";
  {
    util::ConsoleTable table({"variant", "pattern 1", "pattern 2"});
    privacy::MatchParams base = analyzer.config().match;
    const auto row = [&](const std::string& name, const privacy::MatchParams& match) {
      table.add_row({name,
                     std::to_string(identified_users(analyzer, match,
                                                     privacy::Pattern::kVisits)),
                     std::to_string(identified_users(analyzer, match,
                                                     privacy::Pattern::kMovements))});
    };
    row("default (upper tail, no smoothing)", base);
    privacy::MatchParams lower = base;
    lower.tail = stats::ChiSquareTail::kLower;
    row("paper-literal lower tail", lower);
    privacy::MatchParams smoothed = base;
    smoothed.unseen_key_pseudo_count = 0.5;
    row("Laplace smoothing 0.5 on unseen keys", smoothed);
    privacy::MatchParams ks = base;
    ks.test = privacy::MatchTest::kKolmogorovSmirnov;
    row("Kolmogorov-Smirnov matcher", ks);
    table.print(std::cout);
    export_rc("ablation_matchers", table);
    std::cout << "the lower-tail reading accepts nearly any non-trivial fit, so\n"
                 "everything cross-matches and unique identification collapses;\n"
                 "smoothing penalises unknown places and sharpens both patterns;\n"
                 "the conservative KS matcher cross-matches the few-category\n"
                 "visit histograms yet barely hurts pattern 2 - the movement\n"
                 "pattern's advantage is robust to the choice of test.\n\n";
  }

  // ---- 5. coarsening defense -----------------------------------------
  std::cout << "5) location-coarsening defense vs a 1 s background app\n\n";
  {
    util::ConsoleTable table(
        {"snap grid (m)", "PoIs recovered", "% of reference", "users identified (p2)"});
    const geo::LocalProjection projection(analyzer.grid().projection().origin());
    for (const double cell : {0.0, 100.0, 250.0, 500.0, 1000.0}) {
      std::size_t reference_total = 0;
      std::size_t recovered = 0;
      int identified = 0;
      for (std::size_t u = 0; u < analyzer.user_count(); ++u) {
        const auto& reference = analyzer.reference(u);
        std::vector<trace::TracePoint> released = reference.points;
        if (cell > 0.0) {
          for (auto& point : released)
            point.position = geo::snap_to_grid(point.position, cell, projection);
        }
        const auto stays =
            poi::extract_stay_points(released, analyzer.config().extraction);
        const auto pois = poi::cluster_stay_points(stays, radius);
        const auto recovery = privacy::poi_recovery(reference.pois, pois, radius);
        reference_total += recovery.reference_count;
        recovered += recovery.recovered_count;
        const auto observed =
            privacy::build_histogram(privacy::Pattern::kMovements, pois,
                                     analyzer.grid());
        if (!observed.empty()) {
          const auto result = analyzer.adversary().identify(
              observed, privacy::Pattern::kMovements, analyzer.config().match);
          if (result.matched.size() == 1 && result.matched[0] == u) ++identified;
        }
      }
      table.add_row({cell == 0.0 ? "off" : util::format_fixed(cell, 0),
                     std::to_string(recovered),
                     util::format_percent(static_cast<double>(recovered) /
                                              static_cast<double>(reference_total),
                                          1),
                     std::to_string(identified)});
    }
    table.print(std::cout);
    export_rc("ablation_coarsening", table);
    std::cout
        << "snapping at 100 m is transparent to the attack. At 250 m the exact\n"
           "PoI positions are lost (recovery collapses) yet the movement-pattern\n"
           "histogram still identifies most users - the *pattern* survives\n"
           "coarsening long after the places blur. Only cells much larger than\n"
           "the region key space defeat identification (cf. LP-Guardian).\n";
  }

  // ---- 6. co-located homes -------------------------------------------
  std::cout << "\n6) co-located populations (users per home building)\n\n";
  {
    util::ConsoleTable table({"users/home", "identified p1", "identified p2",
                              "mean Deg_anon p1", "mean Deg_anon p2"});
    for (const int sharing : {1, 4, 8}) {
      mobility::DatasetConfig config;
      config.user_count = 48;
      config.synthesis.days = 8;
      config.users_per_home = sharing;
      const core::PrivacyAnalyzer shared_homes =
          core::PrivacyAnalyzer::from_synthetic(core::experiment_analyzer_config(),
                                                config);
      int identified[2] = {0, 0};
      double anonymity[2] = {0.0, 0.0};
      const privacy::Pattern patterns[2] = {privacy::Pattern::kVisits,
                                            privacy::Pattern::kMovements};
      for (std::size_t u = 0; u < shared_homes.user_count(); ++u) {
        for (int p = 0; p < 2; ++p) {
          const auto observed = privacy::observed_histogram(
              shared_homes.reference(u).points, patterns[p],
              shared_homes.config().extraction, shared_homes.grid(), 1);
          if (observed.empty()) continue;
          const auto result = shared_homes.adversary().identify(
              observed, patterns[p], shared_homes.config().match);
          anonymity[p] += result.degree_of_anonymity;
          if (result.matched.size() == 1 && result.matched[0] == u) ++identified[p];
        }
      }
      const auto n = static_cast<double>(shared_homes.user_count());
      table.add_row({std::to_string(sharing),
                     std::to_string(identified[0]) + "/48",
                     std::to_string(identified[1]) + "/48",
                     util::format_fixed(anonymity[0] / n, 3),
                     util::format_fixed(anonymity[1] / n, 3)});
    }
    table.print(std::cout);
    export_rc("ablation_colocated_homes", table);
    std::cout << "co-locating homes (dorm-style populations, as in much of the\n"
                 "real Geolife cohort) narrows pattern 2's margin but defeats\n"
                 "neither pattern: even co-residents keep distinctive amenity\n"
                 "mixes and movement chains. Hiding in a shared building is not\n"
                 "a defense against either histogram.\n";
  }
  return artifact_rc;
}
