// E9 — Figure 5: information leakage measured by entropy / degree of
// anonymity. For each access interval the adversary matches each user's
// collected histogram against all profiles (paper Formula 2 posterior) and
// we count for how many users each pattern produces the more serious
// leakage (the smaller entropy), plus the mean degree of anonymity.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "privacy/detection.hpp"
#include "stats/entropy.hpp"

int main() {
  using namespace locpriv;
  bench::print_header("E9: Figure 5 - entropy / degree of anonymity",
                      /*uses_mobility_corpus=*/true);

  const core::PrivacyAnalyzer& analyzer = core::shared_analyzer();
  const auto& adversary = analyzer.adversary();
  const auto& config = analyzer.config();

  std::cout << "paper anchors at 1 s: pattern 2 leaks more for 54 users,\n"
               "pattern 1 for 38; both degrade as the interval grows\n\n";

  util::ConsoleTable table({"interval (s)", "p2 leaks more (users)",
                            "p1 leaks more (users)", "tie/neither",
                            "mean Deg_anon p1", "mean Deg_anon p2",
                            "identified p1", "identified p2"});
  for (const std::int64_t interval : {1LL, 10LL, 60LL, 600LL, 3600LL}) {
    int p2_more = 0;
    int p1_more = 0;
    int tie = 0;
    int identified_p1 = 0;
    int identified_p2 = 0;
    double anonymity_p1 = 0.0;
    double anonymity_p2 = 0.0;
    for (std::size_t u = 0; u < analyzer.user_count(); ++u) {
      const auto& points = analyzer.reference(u).points;
      const auto visits = privacy::observed_histogram(
          points, privacy::Pattern::kVisits, config.extraction, analyzer.grid(),
          interval);
      const auto movements = privacy::observed_histogram(
          points, privacy::Pattern::kMovements, config.extraction, analyzer.grid(),
          interval);
      privacy::IdentificationResult r1;
      privacy::IdentificationResult r2;
      r1.entropy_bits = stats::max_entropy(adversary.profile_count());
      r2.entropy_bits = r1.entropy_bits;
      if (!visits.empty())
        r1 = adversary.identify(visits, privacy::Pattern::kVisits, config.match);
      if (!movements.empty())
        r2 = adversary.identify(movements, privacy::Pattern::kMovements, config.match);
      anonymity_p1 += r1.degree_of_anonymity;
      anonymity_p2 += r2.degree_of_anonymity;
      if (r1.matched.size() == 1 && r1.matched[0] == u) ++identified_p1;
      if (r2.matched.size() == 1 && r2.matched[0] == u) ++identified_p2;
      // "Leaks more" = smaller entropy, but only when the pattern actually
      // matched the true user (otherwise the small match set is an error,
      // not a leak about this user).
      const bool p1_hit =
          std::find(r1.matched.begin(), r1.matched.end(), u) != r1.matched.end();
      const bool p2_hit =
          std::find(r2.matched.begin(), r2.matched.end(), u) != r2.matched.end();
      const double e1 = p1_hit ? r1.entropy_bits
                               : stats::max_entropy(adversary.profile_count());
      const double e2 = p2_hit ? r2.entropy_bits
                               : stats::max_entropy(adversary.profile_count());
      if (e2 < e1 - 1e-12) ++p2_more;
      else if (e1 < e2 - 1e-12) ++p1_more;
      else ++tie;
    }
    const auto n = static_cast<double>(analyzer.user_count());
    table.add_row({std::to_string(interval), std::to_string(p2_more),
                   std::to_string(p1_more), std::to_string(tie),
                   util::format_fixed(anonymity_p1 / n, 3),
                   util::format_fixed(anonymity_p2 / n, 3),
                   std::to_string(identified_p1), std::to_string(identified_p2)});
  }
  table.print(std::cout);
  return bench::export_table("fig5_entropy", table);
}
