// locprivd soak: the always-on audit service under deliberate shard
// failure. Synthetic mobility traffic is streamed into a sharded
// LocprivService while a ProcessFaultPlan sabotages shard incarnations —
// by default shard0 segfaults and shard1 busy-hangs (ignoring SIGTERM) mid
// soak, so both failover paths run: crash detection via waitpid and hang
// detection via heartbeat timeout with SIGTERM -> grace -> SIGKILL
// escalation. Each dead shard respawns from its last journaled snapshot and
// replays the retained batch suffix; the bench then proves the service's
// per-user audit rows are byte-identical to a single batch-pipeline pass
// over the same schedule (the paper's metrics must not notice the faults).
//
// Output: a console summary plus BENCH_locprivd.json (atomically written)
// with throughput (fixes/sec), resident state bytes per user, snapshot and
// recovery counts, and recovery latency (detection -> post-replay pong).
// Exit 1 when parity fails, a fault path did not fire, or a shard failed to
// recover — CI runs this reduced as the `soak_smoke` chaos test.
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "core/harness/atomic_file.hpp"
#include "mobility/synthesis.hpp"
#include "service/driver.hpp"
#include "service/locprivd.hpp"
#include "sim/faults/process_plan.hpp"
#include "util/args.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace {

using namespace locpriv;

int run(int argc, const char* const* argv) {
  util::Args args;
  args.declare("--users", "6");
  args.declare("--days", "2");
  args.declare("--seed", std::to_string(core::kDatasetSeed));
  args.declare("--shards", "3");
  args.declare("--interval", "60");
  args.declare("--rounds", "1");
  args.declare("--batch", "32");
  args.declare("--pace-ms", "2");
  args.declare("--snapshot-every-ms", "250");
  args.declare("--fault-shards", "crash:1@shard0,hang:1@shard1");
  args.declare("--fault-after", "60");
  args.declare("--run-dir", "");
  args.declare("--json", "BENCH_locprivd.json");
  args.parse(argc, argv, 1);

  bench::print_header("locprivd soak: shard failover and snapshot recovery",
                      /*uses_mobility_corpus=*/false);

  mobility::DatasetConfig dataset;
  dataset.user_count = static_cast<int>(args.get_int("--users"));
  dataset.synthesis.days = static_cast<int>(args.get_int("--days"));
  dataset.seed = static_cast<std::uint64_t>(args.get_int("--seed"));
  const core::PrivacyAnalyzer analyzer = core::PrivacyAnalyzer::from_synthetic(
      core::experiment_analyzer_config(), dataset);

  service::ServiceOptions options;
  options.shards = static_cast<unsigned>(args.get_int("--shards"));
  options.interval_s = args.get_int("--interval");
  options.seed = dataset.seed;
  options.scale = std::to_string(analyzer.user_count()) + "u_t" +
                  std::to_string(options.interval_s);
  options.heartbeat = std::chrono::milliseconds(100);
  options.ping_timeout = std::chrono::milliseconds(1000);
  options.term_grace = std::chrono::milliseconds(500);
  options.snapshot_interval =
      std::chrono::milliseconds(args.get_int("--snapshot-every-ms"));
  options.backoff_base = std::chrono::milliseconds(50);
  options.backoff_seed = dataset.seed;
  options.fault_plan =
      sim::ProcessFaultPlan::parse(args.get("--fault-shards"));
  options.fault_after_batches = static_cast<int>(args.get_int("--fault-after"));

  service::TrafficOptions traffic;
  traffic.batch_size = static_cast<std::size_t>(args.get_int("--batch"));
  traffic.rounds = static_cast<int>(args.get_int("--rounds"));
  traffic.pace = std::chrono::milliseconds(args.get_int("--pace-ms"));

  std::filesystem::path run_dir = args.get("--run-dir");
  if (run_dir.empty())
    run_dir = std::filesystem::temp_directory_path() /
              ("bench_locprivd_" + std::to_string(::getpid()));
  std::filesystem::remove_all(run_dir);

  const auto start = std::chrono::steady_clock::now();
  service::LocprivService daemon(options, analyzer, run_dir, /*resume=*/false);
  const service::TrafficOutcome outcome =
      service::drive_traffic(daemon, analyzer, traffic);
  const auto rows = daemon.collect_reports();
  daemon.drain();
  const double duration_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();

  // Parity oracle: the batch pipeline over the identical schedule. Users on
  // a quarantined shard (respawn budget exhausted — not expected with the
  // default single-incarnation faults) are excluded but reported.
  std::vector<std::string> lost_users;
  for (std::size_t i = 0; i < analyzer.user_count(); ++i) {
    const std::string& user = analyzer.reference(i).user_id;
    const std::string owner =
        service::LocprivService::shard_name(daemon.shard_of(user));
    for (const std::string& bad : daemon.quarantined_shards())
      if (owner == bad) lost_users.push_back(user);
  }
  const std::vector<std::string> mismatched = service::parity_mismatches(
      analyzer, options.interval_s, traffic, rows, lost_users);

  const service::ServiceStats& stats = daemon.stats();
  double latency_sum = 0.0;
  double latency_max = 0.0;
  for (const service::RecoveryRecord& recovery : stats.recoveries) {
    latency_sum += recovery.latency_ms;
    latency_max = std::max(latency_max, recovery.latency_ms);
  }
  const double latency_mean =
      stats.recoveries.empty() ? 0.0
                               : latency_sum / stats.recoveries.size();
  const double fixes_per_sec =
      duration_s > 0.0 ? stats.fixes_submitted / duration_s : 0.0;
  const double bytes_per_user =
      analyzer.user_count() > 0
          ? static_cast<double>(stats.state_bytes) / analyzer.user_count()
          : 0.0;

  std::cout << "soak: " << stats.batches_submitted << " batches, "
            << stats.fixes_submitted << " fixes in "
            << util::format_fixed(duration_s, 1) << "s ("
            << util::format_fixed(fixes_per_sec, 0) << " fixes/s) across "
            << options.shards << " shards\n"
            << "snapshots: " << stats.snapshots
            << "  deaths: " << stats.shard_deaths
            << "  respawns: " << stats.respawns
            << "  recoveries: " << stats.recoveries.size() << "\n"
            << "recovery latency: mean "
            << util::format_fixed(latency_mean, 0) << "ms, max "
            << util::format_fixed(latency_max, 0) << "ms\n"
            << "resident state: "
            << util::format_fixed(bytes_per_user, 0) << " bytes/user\n"
            << "parity: " << rows.size() << " service rows vs batch pipeline, "
            << mismatched.size() << " mismatched\n";
  for (const std::string& user : mismatched)
    std::cout << "  MISMATCH " << user << '\n';
  for (const std::string& name : daemon.quarantined_shards())
    std::cout << "  quarantined: " << name << '\n';

  const bool both_fault_kinds_fired =
      stats.shard_deaths >= 2 && stats.recoveries.size() >= 2;
  const bool snapshotted = stats.snapshots > 0;
  const bool parity_ok = mismatched.empty() && lost_users.empty() &&
                         rows.size() == analyzer.user_count();

  {
    util::JsonWriter json;
    json.begin_object();
    bench::write_bench_header(json, "locprivd");
    json.member("users", static_cast<std::int64_t>(analyzer.user_count()));
    json.member("days", static_cast<std::int64_t>(dataset.synthesis.days));
    json.member("shards", static_cast<std::int64_t>(options.shards));
    json.member("interval_s", options.interval_s);
    json.member("batches_offered",
                static_cast<std::int64_t>(stats.batches_offered));
    json.member("batches_submitted",
                static_cast<std::int64_t>(stats.batches_submitted));
    json.member("batches_shed", static_cast<std::int64_t>(stats.batches_shed));
    json.member("fixes_submitted",
                static_cast<std::int64_t>(stats.fixes_submitted));
    json.member("duration_s", duration_s);
    json.member("fixes_per_sec", fixes_per_sec);
    json.member("resident_bytes_per_user", bytes_per_user);
    json.member("snapshots", static_cast<std::int64_t>(stats.snapshots));
    json.member("shard_deaths", static_cast<std::int64_t>(stats.shard_deaths));
    json.member("respawns", static_cast<std::int64_t>(stats.respawns));
    json.member("recoveries",
                static_cast<std::int64_t>(stats.recoveries.size()));
    json.member("recovery_latency_ms_mean", latency_mean);
    json.member("recovery_latency_ms_max", latency_max);
    json.member("quarantined_shards",
                static_cast<std::int64_t>(daemon.quarantined_shards().size()));
    json.member("parity_ok", parity_ok);
    json.end_object();
    harness::AtomicFileWriter out(args.get("--json"));
    out.stream() << json.str() << '\n';
    out.commit();
    std::cout << "json -> " << args.get("--json") << '\n';
  }

  if (args.get("--run-dir").empty()) {
    std::error_code ec;
    std::filesystem::remove_all(run_dir, ec);
  }

  if (!parity_ok) {
    std::cerr << "FAIL: recovered-shard metrics diverged from the batch "
                 "pipeline\n";
    return 1;
  }
  if (!both_fault_kinds_fired) {
    std::cerr << "FAIL: expected at least 2 shard deaths and recoveries "
                 "(crash + hang), got "
              << stats.shard_deaths << " deaths / "
              << stats.recoveries.size() << " recoveries\n";
    return 1;
  }
  if (!snapshotted) {
    std::cerr << "FAIL: no snapshot was journaled before the faults fired\n";
    return 1;
  }
  if (outcome.interrupted) return exit_code(ErrorCode::kInterrupted);
  std::cout << "\nOK: both injected failures (crash, hang) recovered from "
               "snapshots with byte-identical audit metrics\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return error.exit_code();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return exit_code(ErrorCode::kInternal);
  }
}
