// E2 — Table I: usage of location providers by the 102 background apps,
// split by the granularity their manifests declare. Every cell is measured
// by the dynamic pipeline (dumpsys parsing), not read from the generator.
#include <iostream>

#include "bench_common.hpp"
#include "market/catalog.hpp"
#include "market/study.hpp"

int main() {
  using namespace locpriv;
  bench::print_header("E2: Table I - location providers x declared granularity",
                      /*uses_mobility_corpus=*/false);

  market::CatalogConfig config;
  config.seed = core::kCatalogSeed;
  const market::Catalog catalog = market::generate_catalog(config);
  const market::MarketReport report = market::run_market_study(catalog, 7);

  // Paper Table I, for the side-by-side.
  const int paper[3][market::kProviderComboCount] = {
      {7, 3, 4, 2, 0, 1, 1, 0},
      {0, 0, 6, 0, 0, 0, 0, 0},
      {32, 9, 7, 14, 5, 4, 6, 1},
  };
  const char* rows[3] = {"Fine", "Coarse", "Fine & Coarse"};

  std::vector<std::string> headers{"Granularity \\ Providers"};
  for (int combo = 0; combo < market::kProviderComboCount; ++combo)
    headers.push_back(market::provider_combo_name(combo));
  headers.push_back("row total");

  std::cout << "Measured (each cell = apps observed registering exactly that\n"
               "provider set while backgrounded; paper value in parentheses):\n\n";
  util::ConsoleTable table(headers);
  for (int row = 0; row < market::kGranularityClaimCount; ++row) {
    std::vector<std::string> cells{rows[row]};
    int total = 0;
    for (int combo = 0; combo < market::kProviderComboCount; ++combo) {
      const int measured = report.provider_matrix[static_cast<std::size_t>(row)]
                                                 [static_cast<std::size_t>(combo)];
      total += measured;
      cells.push_back(std::to_string(measured) + " (" +
                      std::to_string(paper[row][combo]) + ")");
    }
    cells.push_back(std::to_string(total));
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  std::cout << '\n';
  bench::print_comparison("background apps total", "102",
                          std::to_string(report.background));
  bench::print_comparison("apps able to obtain precise fixes (gps/fused)", "68",
                          std::to_string(report.background_precise));
  return bench::export_table("table1_providers", table);
}
