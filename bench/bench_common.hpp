// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/harness/atomic_file.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace locpriv::bench {

/// Prints the bench header: experiment id, seeds, and corpus scale, so every
/// bench log is self-describing and reproducible.
inline void print_header(const std::string& experiment, bool uses_mobility_corpus) {
  std::cout << "==============================================================\n"
            << experiment << '\n'
            << "==============================================================\n";
  if (uses_mobility_corpus) {
    const auto scale = core::experiment_scale();
    std::cout << "corpus: " << scale.user_count << " users x " << scale.days
              << " days (seed " << core::kDatasetSeed
              << "); set LOCPRIV_REDUCED_SCALE=1 for a quick 60 x 8 run\n";
  } else {
    std::cout << "catalog seed: " << core::kCatalogSeed << "\n";
  }
  std::cout << '\n';
}

/// One "paper vs measured" comparison line.
inline void print_comparison(const std::string& what, const std::string& paper,
                             const std::string& measured) {
  std::cout << "  " << what << ": paper=" << paper << "  measured=" << measured << '\n';
}

/// Plot-ready series export: when LOCPRIV_CSV_DIR is set, each series named
/// by the bench is written to <dir>/<name>.csv; otherwise every call is a
/// no-op, so benches can emit unconditionally. Files go through the harness
/// atomic writer, so the destination only ever holds a complete artifact —
/// a failed run cannot leave a truncated CSV that looks like data.
class SeriesCsv {
 public:
  /// `name` becomes the file stem (e.g. "fig3_poi_frequency"). An
  /// unwritable export directory fails the bench immediately, with the
  /// path in the message, instead of burning the whole run first.
  explicit SeriesCsv(const std::string& name) {
    const char* dir = std::getenv("LOCPRIV_CSV_DIR");
    if (dir == nullptr || *dir == '\0') return;
    const std::string path = std::string(dir) + "/" + name + ".csv";
    try {
      writer_ = std::make_unique<harness::AtomicFileWriter>(path);
    } catch (const Error& error) {
      std::cerr << "error: " << error.what() << '\n';
      // Deliberate fail-fast: an unwritable export dir must stop the bench
      // before minutes of compute, and bench mains have no outer Error
      // handler to unwind to. locpriv-lint: allow(exit-call)
      std::exit(error.exit_code());
    }
    csv_ = std::make_unique<util::CsvWriter>(writer_->stream());
    std::cout << "(series -> " << path << ")\n";
  }

  /// Best-effort publish for benches that never reach commit() (early
  /// return paths); errors were already printed by commit().
  ~SeriesCsv() { commit(); }

  SeriesCsv(const SeriesCsv&) = delete;
  SeriesCsv& operator=(const SeriesCsv&) = delete;

  /// Writes one CSV row when export is active.
  void row(const std::vector<std::string>& fields) {
    if (csv_) csv_->write_row(fields);
  }

  /// Publishes the artifact atomically. Returns a process exit code (0 on
  /// success; the harness I/O code otherwise, after printing the error), so
  /// benches end with `return csv.commit();` and a full disk no longer
  /// exits 0 over a torn file.
  int commit() {
    if (!writer_ || writer_->committed()) return 0;
    try {
      writer_->commit();
    } catch (const Error& error) {
      std::cerr << "error: " << error.what() << '\n';
      return error.exit_code();
    }
    return 0;
  }

 private:
  std::unique_ptr<harness::AtomicFileWriter> writer_;
  std::unique_ptr<util::CsvWriter> csv_;
};

/// Exports a finished console table as <LOCPRIV_CSV_DIR>/<name>.csv through
/// the atomic writer (no-op without the env var). Returns a process exit
/// code, 0 on success — benches `return bench::export_table(...)`.
inline int export_table(const std::string& name, const util::ConsoleTable& table) {
  SeriesCsv csv(name);
  csv.row(table.headers());
  for (const auto& row : table.rows()) csv.row(row);
  return csv.commit();
}

}  // namespace locpriv::bench
