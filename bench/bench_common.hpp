// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace locpriv::bench {

/// Prints the bench header: experiment id, seeds, and corpus scale, so every
/// bench log is self-describing and reproducible.
inline void print_header(const std::string& experiment, bool uses_mobility_corpus) {
  std::cout << "==============================================================\n"
            << experiment << '\n'
            << "==============================================================\n";
  if (uses_mobility_corpus) {
    const auto scale = core::experiment_scale();
    std::cout << "corpus: " << scale.user_count << " users x " << scale.days
              << " days (seed " << core::kDatasetSeed
              << "); set LOCPRIV_REDUCED_SCALE=1 for a quick 60 x 8 run\n";
  } else {
    std::cout << "catalog seed: " << core::kCatalogSeed << "\n";
  }
  std::cout << '\n';
}

/// One "paper vs measured" comparison line.
inline void print_comparison(const std::string& what, const std::string& paper,
                             const std::string& measured) {
  std::cout << "  " << what << ": paper=" << paper << "  measured=" << measured << '\n';
}

/// Plot-ready series export: when LOCPRIV_CSV_DIR is set, each series named
/// by the bench is written to <dir>/<name>.csv; otherwise every call is a
/// no-op, so benches can emit unconditionally.
class SeriesCsv {
 public:
  /// `name` becomes the file stem (e.g. "fig3_poi_frequency").
  explicit SeriesCsv(const std::string& name) {
    const char* dir = std::getenv("LOCPRIV_CSV_DIR");
    if (dir == nullptr || *dir == '\0') return;
    const std::string path = std::string(dir) + "/" + name + ".csv";
    out_ = std::make_unique<std::ofstream>(path);
    if (!*out_) {
      std::cerr << "warning: cannot write " << path << '\n';
      out_.reset();
      return;
    }
    writer_ = std::make_unique<util::CsvWriter>(*out_);
    std::cout << "(series -> " << path << ")\n";
  }

  /// Writes one CSV row when export is active.
  void row(const std::vector<std::string>& fields) {
    if (writer_) writer_->write_row(fields);
  }

 private:
  std::unique_ptr<std::ofstream> out_;
  std::unique_ptr<util::CsvWriter> writer_;
};

}  // namespace locpriv::bench
