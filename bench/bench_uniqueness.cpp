// E16 — unicity of the collected traces (de Montjoye et al., the paper's
// [7]): how many random spatio-temporal points from what a background app
// collected single a user out of the corpus, and how little spatial
// coarsening helps.
#include <iostream>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "privacy/uniqueness.hpp"
#include "trace/sampling.hpp"

int main() {
  using namespace locpriv;
  bench::print_header("E16: unique in the crowd - spatio-temporal unicity",
                      /*uses_mobility_corpus=*/true);

  const core::PrivacyAnalyzer& analyzer = core::shared_analyzer();
  const std::size_t users = analyzer.user_count();
  constexpr int kMaxPoints = 5;
  constexpr int kTrials = 20;

  std::cout << "fraction of (user, p-point) draws matching exactly one corpus\n"
               "member; fixes as collected by a 60 s background app, hourly\n"
               "time buckets (paper [7] on CDRs: 4 points identify ~95%):\n\n";

  util::ConsoleTable table({"spatial cell", "p=1", "p=2", "p=3", "p=4", "p=5"});
  for (const double cell_m : {250.0, 1000.0, 4000.0}) {
    const privacy::RegionGrid grid(analyzer.grid().projection().origin(), cell_m);
    std::vector<std::set<privacy::StPoint>> corpus;
    corpus.reserve(users);
    for (std::size_t u = 0; u < users; ++u) {
      const auto collected = trace::decimate(analyzer.reference(u).points, 60);
      corpus.push_back(privacy::quantize_trace(collected, grid, /*hour_bucket_h=*/1));
    }
    stats::Rng rng(core::kDatasetSeed ^ static_cast<std::uint64_t>(cell_m));
    const auto result = privacy::unicity(corpus, kMaxPoints, kTrials, rng);
    std::vector<std::string> row{util::format_fixed(cell_m, 0) + " m"};
    for (const double fraction : result.unique_fraction)
      row.push_back(util::format_percent(fraction, 1));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout <<
      "\nThe [7] shape reproduces: a handful of points is enough, and even\n"
      "16x coarser cells barely blunt unicity - anonymising collected\n"
      "location data post hoc cannot save it, which is why the paper argues\n"
      "for controlling the *collection* instead.\n";
  return bench::export_table("uniqueness", table);
}
