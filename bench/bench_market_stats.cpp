// E1 — Section III headline statistics of the market measurement campaign.
//
// Regenerates the synthetic 2,800-app corpus, runs the two-stage
// (static manifest + dynamic on-device) measurement pipeline, and prints
// each §III statistic next to the paper's reported value.
#include <iostream>

#include "bench_common.hpp"
#include "market/catalog.hpp"
#include "market/categories.hpp"
#include "market/study.hpp"

int main() {
  using namespace locpriv;
  bench::print_header("E1: Section III market statistics (paper vs measured)",
                      /*uses_mobility_corpus=*/false);

  market::CatalogConfig config;
  config.seed = core::kCatalogSeed;
  const market::Catalog catalog = market::generate_catalog(config);
  const market::MarketReport report = market::run_market_study(catalog, /*device_seed=*/7);

  const auto pct_of = [](int part, int whole) {
    return util::format_percent(static_cast<double>(part) / whole, 1);
  };

  std::cout << "Static stage (Apktool-equivalent manifest analysis):\n";
  bench::print_comparison("apps crawled (28 categories x top 100)", "2800",
                          std::to_string(report.total_apps));
  bench::print_comparison("declare a location permission", "1137",
                          std::to_string(report.declaring));
  bench::print_comparison("fine only", "17%",
                          pct_of(report.fine_only, report.declaring));
  bench::print_comparison("coarse only", "16%",
                          pct_of(report.coarse_only, report.declaring));
  bench::print_comparison("both permissions", "67%",
                          pct_of(report.both, report.declaring));

  std::cout << "\nDynamic stage (launch / trigger / background / dumpsys):\n";
  bench::print_comparison("function to access location", "528",
                          std::to_string(report.functional));
  bench::print_comparison("request right after launch", "393",
                          std::to_string(report.functional_auto));
  bench::print_comparison("access location in background", "102",
                          std::to_string(report.background));
  bench::print_comparison("background share of functional", "19.3%",
                          pct_of(report.background, report.functional));
  bench::print_comparison("background apps that auto-start", "85",
                          std::to_string(report.background_auto));

  std::cout << "\nGranularity behaviour of the background apps:\n";
  bench::print_comparison("claim fine location", "96 (94.12%)",
                          std::to_string(report.background_claim_fine) + " (" +
                              pct_of(report.background_claim_fine, report.background) +
                              ")");
  bench::print_comparison("claim coarse only", "6",
                          std::to_string(report.background_claim_coarse));
  bench::print_comparison("access precise location", "68 (66.7%)",
                          std::to_string(report.background_precise) + " (" +
                              pct_of(report.background_precise, report.background) +
                              ")");
  bench::print_comparison("claim fine but use coarse", "28 (27.5%)",
                          std::to_string(report.background_coarse_despite_fine) +
                              " (" +
                              pct_of(report.background_coarse_despite_fine,
                                     report.background) +
                              ")");

  std::cout << "\nPer-category declaring apps (top 8, model-chosen propensities):\n";
  util::ConsoleTable table({"category", "declaring / 100"});
  std::vector<std::pair<int, int>> per_category(market::kCategoryCount, {0, 0});
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    per_category[static_cast<std::size_t>(catalog[i].category)].second = catalog[i].category;
    if (report.static_findings[i].declares_location)
      ++per_category[static_cast<std::size_t>(catalog[i].category)].first;
  }
  std::sort(per_category.begin(), per_category.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (int i = 0; i < 8; ++i)
    table.add_row({std::string(market::category_name(per_category[static_cast<std::size_t>(i)].second)),
                   std::to_string(per_category[static_cast<std::size_t>(i)].first)});
  table.print(std::cout);
  return bench::export_table("market_stats_categories", table);
}
