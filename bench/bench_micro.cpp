// E10 — google-benchmark microbenchmarks for the hot algorithmic kernels:
// stay-point extraction, decimation, histogram construction, chi-square
// matching, adversary identification, trip synthesis, and the geo::GeoTree
// spatial-index paths (build, radius, k-NN, and the three routed consumers
// against their linear-scan twins).
//
// Besides the google-benchmark CLI, the binary has a kernel mode:
//
//   bench_micro --json BENCH_micro.json [--scale 100000] [--baseline FILE]
//
// which times each indexed hot path against its "before" linear scan at
// `--scale` points, asserts the outputs are identical (the index is a pure
// perf change), and writes the standardized BENCH_micro.json artifact with
// before/after nanoseconds and speedups. With --baseline it re-reads a
// committed artifact and exits non-zero if any kernel regressed by more
// than 2x — the CI perf-smoke gate.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/analyzer.hpp"
#include "core/harness/atomic_file.hpp"
#include "geo/geotree.hpp"
#include "lppm/policy.hpp"
#include "mobility/synthesis.hpp"
#include "poi/clustering.hpp"
#include "poi/staypoint.hpp"
#include "privacy/detection.hpp"
#include "privacy/prediction.hpp"
#include "privacy/reconstruction.hpp"
#include "privacy/region.hpp"
#include "privacy/uniqueness.hpp"
#include "stats/rng.hpp"
#include "trace/sampling.hpp"
#include "util/json.hpp"

namespace {

using namespace locpriv;

// One simulated user's full-rate trace, built once.
const std::vector<trace::TracePoint>& sample_points() {
  static const std::vector<trace::TracePoint> points = [] {
    mobility::DatasetConfig config;
    config.user_count = 1;
    config.synthesis.days = 8;
    return mobility::generate_dataset(config).users[0].flattened();
  }();
  return points;
}

// A small analyzer for matcher/adversary benchmarks.
const core::PrivacyAnalyzer& bench_analyzer() {
  static const core::PrivacyAnalyzer analyzer = [] {
    mobility::DatasetConfig config;
    config.user_count = 16;
    config.synthesis.days = 6;
    return core::PrivacyAnalyzer::from_synthetic(core::AnalyzerConfig{}, config);
  }();
  return analyzer;
}

// ---------------------------------------------------------------------------
// Deterministic synthetic corpora for the spatial-index kernels. City-scale
// box (~55 x 50 km) around the paper's Beijing anchor.

std::vector<geo::LatLon> scatter(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<geo::LatLon> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({39.9 + rng.uniform(-0.25, 0.25), 116.4 + rng.uniform(-0.3, 0.3)});
  }
  return points;
}

// Stays jitter tightly around ~n/50 distinct places, so clustering converges
// to a PoI set in the thousands at 100k stays — large enough that the scan's
// O(S x P) inner loop dominates while the clusters themselves stay coherent.
std::vector<poi::StayPoint> make_stays(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  const std::size_t place_count = std::max<std::size_t>(std::size_t{1}, n / 50);
  const auto places = scatter(place_count, seed + 1);
  std::vector<poi::StayPoint> stays(n);
  std::int64_t t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const geo::LatLon& place = places[rng.next_below(place_count)];
    stays[i].centroid = {place.lat_deg + rng.uniform(-2e-4, 2e-4),
                         place.lon_deg + rng.uniform(-2e-4, 2e-4)};
    stays[i].enter_s = t;
    stays[i].exit_s = t + 600;
    stays[i].fix_count = 4;
    t += 900;
  }
  return stays;
}

// A time-ordered synthetic fix stream (30 s cadence) wandering the same box.
std::vector<trace::TracePoint> make_fixes(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<trace::TracePoint> fixes(n);
  geo::LatLon at{39.9, 116.4};
  for (std::size_t i = 0; i < n; ++i) {
    at.lat_deg = std::clamp(at.lat_deg + rng.uniform(-2e-3, 2e-3), 39.65, 40.15);
    at.lon_deg = std::clamp(at.lon_deg + rng.uniform(-2e-3, 2e-3), 116.1, 116.7);
    fixes[i] = {at, static_cast<std::int64_t>(i) * 30};
  }
  return fixes;
}

// ---------------------------------------------------------------------------
// google-benchmark registrations.

void BM_StayPointExtraction(benchmark::State& state) {
  const auto& points = sample_points();
  poi::ExtractionParams params;
  params.window_fixes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(poi::extract_stay_points(points, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_StayPointExtraction)->Arg(4)->Arg(8)->Arg(16);

void BM_StayPointExtractionAnchor(benchmark::State& state) {
  const auto& points = sample_points();
  const poi::ExtractionParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(poi::extract_stay_points_anchor(points, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_StayPointExtractionAnchor);

void BM_Decimate(benchmark::State& state) {
  const auto& points = sample_points();
  const std::int64_t interval = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::decimate(points, interval));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_Decimate)->Arg(10)->Arg(600);

void BM_ObservedHistogram(benchmark::State& state) {
  const auto& analyzer = bench_analyzer();
  const auto& points = analyzer.reference(0).points;
  for (auto _ : state) {
    benchmark::DoNotOptimize(privacy::observed_histogram(
        points, privacy::Pattern::kMovements, analyzer.config().extraction,
        analyzer.grid(), 1));
  }
}
BENCHMARK(BM_ObservedHistogram);

void BM_HistogramMatch(benchmark::State& state) {
  const auto& analyzer = bench_analyzer();
  const auto& profile = analyzer.reference(0).movements;
  const auto observed = privacy::observed_histogram(
      analyzer.reference(0).points, privacy::Pattern::kMovements,
      analyzer.config().extraction, analyzer.grid(), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        privacy::match_histograms(observed, profile, analyzer.config().match));
  }
}
BENCHMARK(BM_HistogramMatch);

void BM_AdversaryIdentify(benchmark::State& state) {
  const auto& analyzer = bench_analyzer();
  const auto observed = privacy::observed_histogram(
      analyzer.reference(0).points, privacy::Pattern::kMovements,
      analyzer.config().extraction, analyzer.grid(), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.adversary().identify(
        observed, privacy::Pattern::kMovements, analyzer.config().match));
  }
}
BENCHMARK(BM_AdversaryIdentify);

void BM_UnicityQuery(benchmark::State& state) {
  const auto& analyzer = bench_analyzer();
  std::vector<std::set<privacy::StPoint>> corpus;
  for (std::size_t u = 0; u < analyzer.user_count(); ++u)
    corpus.push_back(privacy::quantize_trace(
        trace::decimate(analyzer.reference(u).points, 60), analyzer.grid(), 1));
  stats::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(privacy::unicity(corpus, 3, 2, rng));
  }
}
BENCHMARK(BM_UnicityQuery);

void BM_NextPlacePrediction(benchmark::State& state) {
  const auto& analyzer = bench_analyzer();
  const privacy::NextPlacePredictor predictor(analyzer.reference(0).movements);
  const auto sequence =
      privacy::region_sequence(analyzer.reference(0).pois, analyzer.grid());
  for (auto _ : state) {
    benchmark::DoNotOptimize(privacy::score_predictions(predictor, sequence));
  }
}
BENCHMARK(BM_NextPlacePrediction);

void BM_GuardianPolicyApply(benchmark::State& state) {
  lppm::GuardianPolicy policy({39.9042, 116.4074}, 1000.0);
  policy.protect_place({39.91, 116.41}, 200.0);
  geo::LatLon position{39.95, 116.45};
  for (auto _ : state) {
    geo::LatLon p = position;
    benchmark::DoNotOptimize(policy.apply("com.app", true, p));
  }
}
BENCHMARK(BM_GuardianPolicyApply);

void BM_TripSynthesisPerDay(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    mobility::DatasetConfig config;
    config.user_count = 1;
    config.synthesis.days = 4;
    state.ResumeTiming();
    benchmark::DoNotOptimize(mobility::generate_dataset(config));
  }
}
BENCHMARK(BM_TripSynthesisPerDay);

void BM_GeoTreeBuild(benchmark::State& state) {
  const auto points = scatter(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::GeoTree(points));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GeoTreeBuild)->Arg(10000)->Arg(100000);

void BM_GeoTreeRadiusQuery(benchmark::State& state) {
  const geo::GeoTree tree(scatter(static_cast<std::size_t>(state.range(0)), 7));
  const auto centers = scatter(64, 11);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.query_radius(centers[q++ % centers.size()], 250.0));
  }
}
BENCHMARK(BM_GeoTreeRadiusQuery)->Arg(10000)->Arg(100000);

void BM_GeoTreeKnn(benchmark::State& state) {
  const geo::GeoTree tree(scatter(static_cast<std::size_t>(state.range(0)), 7));
  const auto centers = scatter(64, 13);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.query_knn(centers[q++ % centers.size()], 16));
  }
}
BENCHMARK(BM_GeoTreeKnn)->Arg(10000)->Arg(100000);

void BM_PoiAssignment(benchmark::State& state) {
  const auto stays = make_stays(static_cast<std::size_t>(state.range(0)), 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(poi::cluster_stay_points(stays, 100.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PoiAssignment)->Arg(10000)->Arg(100000);

void BM_PoiAssignmentScan(benchmark::State& state) {
  const auto stays = make_stays(static_cast<std::size_t>(state.range(0)), 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(poi::cluster_stay_points_scan(stays, 100.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PoiAssignmentScan)->Arg(10000);

void BM_ReconstructionCandidates(benchmark::State& state) {
  const privacy::PositionEstimator estimator(
      make_fixes(static_cast<std::size_t>(state.range(0)), 19));
  const auto centers = scatter(64, 23);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimator.fixes_near(centers[q++ % centers.size()], 250.0));
  }
}
BENCHMARK(BM_ReconstructionCandidates)->Arg(10000)->Arg(100000);

void BM_ReconstructionCandidatesScan(benchmark::State& state) {
  const privacy::PositionEstimator estimator(
      make_fixes(static_cast<std::size_t>(state.range(0)), 19));
  const auto centers = scatter(64, 23);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimator.fixes_near_scan(centers[q++ % centers.size()], 250.0));
  }
}
BENCHMARK(BM_ReconstructionCandidatesScan)->Arg(10000);

void BM_RegionContainment(benchmark::State& state) {
  const auto points = scatter(static_cast<std::size_t>(state.range(0)), 29);
  const geo::GeoTree tree(points);
  const privacy::RegionGrid grid({39.9, 116.4}, 250.0);
  const auto centers = scatter(64, 31);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid.points_in_region(tree, grid.region_of(centers[q++ % centers.size()])));
  }
}
BENCHMARK(BM_RegionContainment)->Arg(10000)->Arg(100000);

// ---------------------------------------------------------------------------
// Kernel mode: timed before/after pairs behind the BENCH_micro.json artifact.

using Clock = std::chrono::steady_clock;

// Best-of-`reps` wall time of fn(), in nanoseconds.
template <typename Fn>
double time_ns(Fn&& fn, int reps = 3) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    fn();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
            .count());
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

struct KernelResult {
  std::string name;
  std::int64_t items = 0;
  std::int64_t queries = 0;  // 0 when the kernel has no query loop.
  double scan_ns = 0.0;      // 0 when there is no linear-scan twin.
  double indexed_ns = 0.0;
  bool identical = true;  // Indexed output byte-equal to the scan's.
};

bool pois_identical(const std::vector<poi::Poi>& a, const std::vector<poi::Poi>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].centroid.lat_deg != b[i].centroid.lat_deg ||
        a[i].centroid.lon_deg != b[i].centroid.lon_deg ||
        a[i].visits.size() != b[i].visits.size())
      return false;
  }
  return true;
}

std::vector<KernelResult> run_kernels(std::size_t scale) {
  std::vector<KernelResult> results;
  const auto query_centers = scatter(256, 23);

  {
    const auto stays = make_stays(scale, 17);
    KernelResult r{"poi_assignment", static_cast<std::int64_t>(scale), 0, 0.0, 0.0};
    std::vector<poi::Poi> scan_pois, indexed_pois;
    r.scan_ns = time_ns([&] { scan_pois = poi::cluster_stay_points_scan(stays, 100.0); });
    r.indexed_ns = time_ns([&] { indexed_pois = poi::cluster_stay_points(stays, 100.0); });
    r.identical = pois_identical(scan_pois, indexed_pois);
    std::fprintf(stderr, "poi_assignment: %zu stays -> %zu pois, %.1fms scan / %.1fms indexed\n",
                 stays.size(), indexed_pois.size(), r.scan_ns / 1e6, r.indexed_ns / 1e6);
    results.push_back(r);
  }

  {
    const auto fixes = make_fixes(scale, 19);
    const privacy::PositionEstimator estimator(fixes);
    KernelResult r{"reconstruction_candidates", static_cast<std::int64_t>(scale),
                   static_cast<std::int64_t>(query_centers.size()), 0.0, 0.0};
    std::size_t scan_total = 0, indexed_total = 0;
    r.scan_ns = time_ns([&] {
      scan_total = 0;
      for (const auto& c : query_centers)
        scan_total += estimator.fixes_near_scan(c, 250.0).size();
    });
    r.indexed_ns = time_ns([&] {
      indexed_total = 0;
      for (const auto& c : query_centers)
        indexed_total += estimator.fixes_near(c, 250.0).size();
    });
    r.identical = scan_total == indexed_total;
    for (const auto& c : query_centers) {
      if (estimator.fixes_near(c, 250.0) != estimator.fixes_near_scan(c, 250.0)) {
        r.identical = false;
        break;
      }
    }
    std::fprintf(stderr,
                 "reconstruction_candidates: %zu fixes, %zu queries, %.1fms scan / %.1fms indexed\n",
                 fixes.size(), query_centers.size(), r.scan_ns / 1e6, r.indexed_ns / 1e6);
    results.push_back(r);
  }

  {
    const auto points = scatter(scale, 29);
    const geo::GeoTree tree(points);
    const privacy::RegionGrid grid({39.9, 116.4}, 250.0);
    KernelResult r{"region_containment", static_cast<std::int64_t>(scale),
                   static_cast<std::int64_t>(query_centers.size()), 0.0, 0.0};
    std::size_t scan_total = 0, indexed_total = 0;
    r.scan_ns = time_ns([&] {
      scan_total = 0;
      for (const auto& c : query_centers)
        scan_total += grid.points_in_region_scan(points, grid.region_of(c)).size();
    });
    r.indexed_ns = time_ns([&] {
      indexed_total = 0;
      for (const auto& c : query_centers)
        indexed_total += grid.points_in_region(tree, grid.region_of(c)).size();
    });
    r.identical = scan_total == indexed_total;
    for (const auto& c : query_centers) {
      const auto id = grid.region_of(c);
      if (grid.points_in_region(tree, id) != grid.points_in_region_scan(points, id)) {
        r.identical = false;
        break;
      }
    }
    std::fprintf(stderr, "region_containment: %zu points, %zu queries, %.1fms scan / %.1fms indexed\n",
                 points.size(), query_centers.size(), r.scan_ns / 1e6, r.indexed_ns / 1e6);
    results.push_back(r);
  }

  {
    const auto points = scatter(scale, 7);
    KernelResult r{"geotree_build", static_cast<std::int64_t>(scale), 0, 0.0, 0.0};
    r.indexed_ns = time_ns([&] { benchmark::DoNotOptimize(geo::GeoTree(points)); });
    results.push_back(r);

    const geo::GeoTree tree(points);
    KernelResult radius{"geotree_radius_query", static_cast<std::int64_t>(scale),
                        static_cast<std::int64_t>(query_centers.size()), 0.0, 0.0};
    radius.indexed_ns = time_ns([&] {
      for (const auto& c : query_centers)
        benchmark::DoNotOptimize(tree.query_radius(c, 250.0));
    });
    results.push_back(radius);

    KernelResult knn{"geotree_knn", static_cast<std::int64_t>(scale),
                     static_cast<std::int64_t>(query_centers.size()), 0.0, 0.0};
    knn.indexed_ns = time_ns([&] {
      for (const auto& c : query_centers)
        benchmark::DoNotOptimize(tree.query_knn(c, 16));
    });
    results.push_back(knn);
  }

  return results;
}

std::string kernels_to_json(const std::vector<KernelResult>& results,
                            std::size_t scale) {
  util::JsonWriter json;
  json.begin_object();
  bench::write_bench_header(json, "micro");
  json.member("scale", static_cast<std::int64_t>(scale));
  json.key("kernels");
  json.begin_array();
  for (const auto& r : results) {
    json.begin_object();
    json.member("name", r.name);
    json.member("items", r.items);
    if (r.queries > 0) json.member("queries", r.queries);
    if (r.scan_ns > 0.0) {
      json.member("scan_ns", r.scan_ns);
      json.member("speedup", r.scan_ns / r.indexed_ns);
      json.member("identical", r.identical);
    }
    json.member("indexed_ns", r.indexed_ns);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

// Hand-rolled scanner over a committed BENCH_micro.json (the repo has a JSON
// writer but no parser): finds the kernel object named `name` and returns its
// "indexed_ns" value, or a negative number when absent.
double baseline_indexed_ns(const std::string& text, const std::string& name) {
  const std::string anchor = "\"name\":\"" + util::json_escape(name) + "\"";
  const std::size_t at = text.find(anchor);
  if (at == std::string::npos) return -1.0;
  const std::size_t object_end = text.find('}', at);
  const std::string key = "\"indexed_ns\":";
  const std::size_t key_at = text.find(key, at);
  if (key_at == std::string::npos || key_at > object_end) return -1.0;
  return std::strtod(text.c_str() + key_at + key.size(), nullptr);
}

int run_kernel_mode(const std::string& json_path, const std::string& baseline_path,
                    std::size_t scale) {
  const auto results = run_kernels(scale);
  const std::string artifact = kernels_to_json(results, scale);

  bool ok = true;
  for (const auto& r : results) {
    if (!r.identical) {
      std::fprintf(stderr, "FAIL %s: indexed output differs from scan twin\n",
                   r.name.c_str());
      ok = false;
    }
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n", baseline_path.c_str());
      ok = false;
    } else {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string baseline = buffer.str();
      for (const auto& r : results) {
        const double base_ns = baseline_indexed_ns(baseline, r.name);
        if (base_ns <= 0.0) {
          std::fprintf(stderr, "perf-smoke %-26s no baseline entry, skipped\n",
                       r.name.c_str());
          continue;
        }
        const double ratio = r.indexed_ns / base_ns;
        std::fprintf(stderr, "perf-smoke %-26s %8.1fms vs baseline %8.1fms (%.2fx)\n",
                     r.name.c_str(), r.indexed_ns / 1e6, base_ns / 1e6, ratio);
        if (ratio > 2.0) {
          std::fprintf(stderr, "FAIL %s: regressed %.2fx over baseline (gate: 2x)\n",
                       r.name.c_str(), ratio);
          ok = false;
        }
      }
    }
  }

  if (!json_path.empty()) harness::write_file_atomic(json_path, artifact + "\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string baseline_path;
  std::size_t scale = 100000;
  bool kernel_mode = false;

  std::vector<char*> forwarded;
  forwarded.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const auto take_value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (const char* v = take_value("--json")) {
      json_path = v;
      kernel_mode = true;
    } else if (const char* v = take_value("--baseline")) {
      baseline_path = v;
      kernel_mode = true;
    } else if (const char* v = take_value("--scale")) {
      scale = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else {
      forwarded.push_back(argv[i]);
    }
  }
  if (kernel_mode) return run_kernel_mode(json_path, baseline_path, scale);

  int forwarded_argc = static_cast<int>(forwarded.size());
  benchmark::Initialize(&forwarded_argc, forwarded.data());
  if (benchmark::ReportUnrecognizedArguments(forwarded_argc, forwarded.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
