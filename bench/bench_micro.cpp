// E10 — google-benchmark microbenchmarks for the hot algorithmic kernels:
// stay-point extraction, decimation, histogram construction, chi-square
// matching, adversary identification, and trip synthesis.
#include <benchmark/benchmark.h>

#include "core/analyzer.hpp"
#include "mobility/synthesis.hpp"
#include "poi/clustering.hpp"
#include "poi/staypoint.hpp"
#include "privacy/detection.hpp"
#include "privacy/prediction.hpp"
#include "privacy/uniqueness.hpp"
#include "lppm/policy.hpp"
#include "trace/sampling.hpp"

namespace {

using namespace locpriv;

// One simulated user's full-rate trace, built once.
const std::vector<trace::TracePoint>& sample_points() {
  static const std::vector<trace::TracePoint> points = [] {
    mobility::DatasetConfig config;
    config.user_count = 1;
    config.synthesis.days = 8;
    return mobility::generate_dataset(config).users[0].flattened();
  }();
  return points;
}

// A small analyzer for matcher/adversary benchmarks.
const core::PrivacyAnalyzer& bench_analyzer() {
  static const core::PrivacyAnalyzer analyzer = [] {
    mobility::DatasetConfig config;
    config.user_count = 16;
    config.synthesis.days = 6;
    return core::PrivacyAnalyzer::from_synthetic(core::AnalyzerConfig{}, config);
  }();
  return analyzer;
}

void BM_StayPointExtraction(benchmark::State& state) {
  const auto& points = sample_points();
  poi::ExtractionParams params;
  params.window_fixes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(poi::extract_stay_points(points, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_StayPointExtraction)->Arg(4)->Arg(8)->Arg(16);

void BM_StayPointExtractionAnchor(benchmark::State& state) {
  const auto& points = sample_points();
  const poi::ExtractionParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(poi::extract_stay_points_anchor(points, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_StayPointExtractionAnchor);

void BM_Decimate(benchmark::State& state) {
  const auto& points = sample_points();
  const std::int64_t interval = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::decimate(points, interval));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_Decimate)->Arg(10)->Arg(600);

void BM_ObservedHistogram(benchmark::State& state) {
  const auto& analyzer = bench_analyzer();
  const auto& points = analyzer.reference(0).points;
  for (auto _ : state) {
    benchmark::DoNotOptimize(privacy::observed_histogram(
        points, privacy::Pattern::kMovements, analyzer.config().extraction,
        analyzer.grid(), 1));
  }
}
BENCHMARK(BM_ObservedHistogram);

void BM_HistogramMatch(benchmark::State& state) {
  const auto& analyzer = bench_analyzer();
  const auto& profile = analyzer.reference(0).movements;
  const auto observed = privacy::observed_histogram(
      analyzer.reference(0).points, privacy::Pattern::kMovements,
      analyzer.config().extraction, analyzer.grid(), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        privacy::match_histograms(observed, profile, analyzer.config().match));
  }
}
BENCHMARK(BM_HistogramMatch);

void BM_AdversaryIdentify(benchmark::State& state) {
  const auto& analyzer = bench_analyzer();
  const auto observed = privacy::observed_histogram(
      analyzer.reference(0).points, privacy::Pattern::kMovements,
      analyzer.config().extraction, analyzer.grid(), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.adversary().identify(
        observed, privacy::Pattern::kMovements, analyzer.config().match));
  }
}
BENCHMARK(BM_AdversaryIdentify);

void BM_UnicityQuery(benchmark::State& state) {
  const auto& analyzer = bench_analyzer();
  std::vector<std::set<privacy::StPoint>> corpus;
  for (std::size_t u = 0; u < analyzer.user_count(); ++u)
    corpus.push_back(privacy::quantize_trace(
        trace::decimate(analyzer.reference(u).points, 60), analyzer.grid(), 1));
  stats::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(privacy::unicity(corpus, 3, 2, rng));
  }
}
BENCHMARK(BM_UnicityQuery);

void BM_NextPlacePrediction(benchmark::State& state) {
  const auto& analyzer = bench_analyzer();
  const privacy::NextPlacePredictor predictor(analyzer.reference(0).movements);
  const auto sequence =
      privacy::region_sequence(analyzer.reference(0).pois, analyzer.grid());
  for (auto _ : state) {
    benchmark::DoNotOptimize(privacy::score_predictions(predictor, sequence));
  }
}
BENCHMARK(BM_NextPlacePrediction);

void BM_GuardianPolicyApply(benchmark::State& state) {
  lppm::GuardianPolicy policy({39.9042, 116.4074}, 1000.0);
  policy.protect_place({39.91, 116.41}, 200.0);
  geo::LatLon position{39.95, 116.45};
  for (auto _ : state) {
    geo::LatLon p = position;
    benchmark::DoNotOptimize(policy.apply("com.app", true, p));
  }
}
BENCHMARK(BM_GuardianPolicyApply);

void BM_TripSynthesisPerDay(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    mobility::DatasetConfig config;
    config.user_count = 1;
    config.synthesis.days = 4;
    state.ResumeTiming();
    benchmark::DoNotOptimize(mobility::generate_dataset(config));
  }
}
BENCHMARK(BM_TripSynthesisPerDay);

}  // namespace

BENCHMARK_MAIN();
